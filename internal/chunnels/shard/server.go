package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// SteeredCounter is the telemetry counter name for requests forwarded by
// the userspace steering worker. Compare against the XDP hook's
// redirect probe to see which steering path a deployment actually took.
const SteeredCounter = "chunnel/shard/steered"

// serverImpl is the userspace fallback: all clients' requests funnel
// through one steering worker that forwards each request over the
// network to its shard and relays the reply — correct, but the worker
// and the extra hop make it the slowest option (§5 "Server Fallback").
type serverImpl struct {
	base.Impl

	mu      sync.Mutex
	steerCh chan steerItem
	started bool
}

type steerItem struct {
	payload []byte
	fwd     core.Conn
}

func newServerImpl() *serverImpl {
	s := &serverImpl{steerCh: make(chan steerItem, 4096)}
	s.ImplInfo = core.ImplInfo{
		Name:     ImplServer,
		Type:     Type,
		Endpoint: spec.EndpointServer,
		Priority: 0,
		Location: core.LocUserspace,
	}
	s.WrapFn = s.wrap
	s.ValidateFn = validateArgs
	return s
}

// steerSendTimeout bounds each forwarded request: the steering worker
// is shared by every client, so one stuck shard connection must not
// stall the whole queue.
const steerSendTimeout = 5 * time.Second

// steerWorker is the single shared steering thread.
func (s *serverImpl) steerWorker() {
	steered := telemetry.Default().Counter(SteeredCounter)
	for item := range s.steerCh {
		// A userspace balancer copies the request and re-sends it
		// through the network stack.
		buf := make([]byte, len(item.payload))
		copy(buf, item.payload)
		ctx, cancel := context.WithTimeout(context.Background(), steerSendTimeout)
		_ = item.fwd.Send(ctx, buf)
		cancel()
		steered.Inc()
	}
}

func (s *serverImpl) wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	addrs, fh, err := decodeArgs(args)
	if err != nil {
		return nil, err
	}
	d := env.Dialer()
	if d == nil {
		return nil, fmt.Errorf("shard: no dialer in environment")
	}
	s.mu.Lock()
	if !s.started {
		s.started = true
		go s.steerWorker()
	}
	s.mu.Unlock()

	// One forwarding connection per (client, shard) so replies route
	// back to the right client without protocol changes.
	fwd := make([]core.Conn, len(addrs))
	for i, a := range addrs {
		c, err := d.Dial(ctx, a)
		if err != nil {
			for _, open := range fwd[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("shard: dial shard %d (%s): %w", i, a, err)
		}
		fwd[i] = c
	}

	pctx, cancel := context.WithCancel(context.Background())
	// Reply pumps: shard worker responses relay back to the client.
	for _, c := range fwd {
		go func(c core.Conn) {
			for {
				m, err := c.Recv(pctx)
				if err != nil {
					return
				}
				if err := conn.Send(pctx, m); err != nil {
					return
				}
			}
		}(c)
	}
	// Ingress pump: client requests go to the shared steering worker.
	go func() {
		for {
			m, err := conn.Recv(pctx)
			if err != nil {
				return
			}
			item := steerItem{payload: m, fwd: fwd[fh.Apply(m)]}
			select {
			case s.steerCh <- item:
			case <-pctx.Done():
				return
			}
		}
	}()

	return &captiveConn{conn: conn, cancel: cancel, extra: fwd}, nil
}

// captiveConn is handed to the server application when a steering
// implementation consumes the connection's traffic: the application
// holds it (and closes it), but data flows through the shard workers.
type captiveConn struct {
	conn   core.Conn
	cancel context.CancelFunc
	extra  []core.Conn
	once   sync.Once
}

func (c *captiveConn) Send(ctx context.Context, p []byte) error {
	return c.conn.Send(ctx, p)
}

// Recv blocks until the connection closes: steered traffic is delivered
// to the shard workers, not the accepting application loop.
func (c *captiveConn) Recv(ctx context.Context) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (c *captiveConn) LocalAddr() core.Addr  { return c.conn.LocalAddr() }
func (c *captiveConn) RemoteAddr() core.Addr { return c.conn.RemoteAddr() }

func (c *captiveConn) Close() error {
	c.once.Do(func() {
		c.cancel()
		for _, e := range c.extra {
			e.Close()
		}
		c.conn.Close()
	})
	return nil
}
