package shard_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/xdp"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

const nshards = 3

var fh = xdp.FieldHash{Offset: 0, Length: 4, Shards: nshards}

// cluster is a test shard deployment: three workers, each with a raw
// listener (for direct/forwarded requests) and a steered queue (for the
// XDP path). Every request is answered with the request bytes plus the
// shard id, so tests can verify routing.
type cluster struct {
	net    *transport.PipeNetwork
	addrs  []core.Addr
	queues []chan shard.Steered
}

func startCluster(t *testing.T) *cluster {
	t.Helper()
	ctx := ctxT(t)
	c := &cluster{net: transport.NewPipeNetwork()}
	for i := 0; i < nshards; i++ {
		i := i
		l, err := c.net.Listen("srvhost", fmt.Sprintf("shard%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		c.addrs = append(c.addrs, l.Addr())
		q := make(chan shard.Steered, 1024)
		c.queues = append(c.queues, q)
		// Raw listener path (client push / server fallback forwarding).
		go func() {
			for {
				conn, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(conn core.Conn) {
					for {
						m, err := conn.Recv(ctx)
						if err != nil {
							return
						}
						conn.Send(ctx, append(append([]byte{}, m...), byte(i)))
					}
				}(conn)
			}
		}()
		// Steered queue path (XDP).
		go func() {
			for s := range q {
				s.Reply(ctx, append(append([]byte{}, s.Payload...), byte(i)))
			}
		}()
	}
	return c
}

// connect negotiates one client connection against a shard server with
// the given per-side registries and server policy.
func connect(t *testing.T, c *cluster, regC, regS *core.Registry, policy core.Policy) core.Conn {
	t.Helper()
	ctx := ctxT(t)
	envS := core.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: c.net})
	envS.Provide(shard.EnvQueues, c.queues)
	envC := core.NewEnv("clihost")
	envC.SetDialer(&transport.MultiDialer{HostID: "clihost", Pipe: c.net})

	opts := []core.Option{core.WithRegistry(regS), core.WithEnv(envS)}
	if policy != nil {
		opts = append(opts, core.WithPolicy(policy))
	}
	srvEp, err := core.NewEndpoint("my-kv-srv", spec.Seq(shard.Node(c.addrs, fh)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	cliEp, err := core.NewEndpoint("kv-client", spec.Seq(), core.WithRegistry(regC), core.WithEnv(envC))
	if err != nil {
		t.Fatal(err)
	}

	svcName := fmt.Sprintf("canonical-%p", regC)
	baseL, err := c.net.Listen("srvhost", svcName)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { baseL.Close() })
	nl, err := srvEp.Listen(ctx, baseL)
	if err != nil {
		t.Fatal(err)
	}
	srvConns := make(chan core.Conn, 1)
	go func() {
		conn, err := nl.Accept(ctx)
		if err == nil {
			srvConns <- conn
		}
	}()
	raw, err := c.net.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: svcName})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cliEp.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case sc := <-srvConns:
		t.Cleanup(func() { conn.Close(); sc.Close() })
	case <-time.After(10 * time.Second):
		t.Fatal("server never accepted")
	}
	return conn
}

// exercise sends n requests and verifies each reply carries the shard id
// the field hash predicts.
func exercise(t *testing.T, conn core.Conn, n int) {
	t.Helper()
	ctx := ctxT(t)
	outstanding := map[string]byte{}
	for i := 0; i < n; i++ {
		req := []byte(fmt.Sprintf("%04d-req", i))
		outstanding[string(req)] = byte(fh.Apply(req))
		if err := conn.Send(ctx, req); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := conn.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		req, shardID := m[:len(m)-1], m[len(m)-1]
		want, ok := outstanding[string(req)]
		if !ok {
			t.Fatalf("unexpected reply for %q", req)
		}
		delete(outstanding, string(req))
		if shardID != want {
			t.Errorf("request %q handled by shard %d, want %d", req, shardID, want)
		}
	}
	if len(outstanding) != 0 {
		t.Errorf("%d requests unanswered", len(outstanding))
	}
}

func TestClientPushRoutesDirectly(t *testing.T) {
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterClient(regC)
	shard.RegisterServer(regS) // fallback presence for Listen
	conn := connect(t, c, regC, regS, nil)
	exercise(t, conn, 60)
}

func TestServerFallbackSteers(t *testing.T) {
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterServer(regS)
	conn := connect(t, c, regC, regS, core.PreferImpl(shard.ImplServer))
	exercise(t, conn, 60)
}

func TestXDPSteersThroughQueues(t *testing.T) {
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterServer(regS)
	x := shard.RegisterXDP(regS)
	conn := connect(t, c, regC, regS, nil) // default policy: xdp wins by priority
	exercise(t, conn, 60)
	st := x.Hook().Stats()
	if st.Redirected < 60 {
		t.Errorf("xdp hook redirected %d packets, want >= 60", st.Redirected)
	}
	if name, ok := x.Hook().Attached(); !ok || name != "shard-steer" {
		t.Errorf("hook attachment: %q %t", name, ok)
	}
}

func TestXDPTeardownDetaches(t *testing.T) {
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterServer(regS)
	x := shard.RegisterXDP(regS)
	conn := connect(t, c, regC, regS, nil)
	exercise(t, conn, 9)
	conn.Close() // client side
	// The server-side managed conn owns the teardown; find it via the
	// cleanup ordering — instead close via the test cleanup and verify
	// after: simulate by direct teardown through another connection
	// cycle.
	env := core.NewEnv("srvhost")
	if err := x.Teardown(ctxT(t), env); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	if _, ok := x.Hook().Attached(); ok {
		t.Error("program still attached after last teardown")
	}
	log := env.ConfigLog()
	if len(log) == 0 || log[len(log)-1].Action != "detach-program" {
		t.Errorf("config log: %v", log)
	}
}

func TestClientPreferredOverServerAccelerated(t *testing.T) {
	// Default policy: a client-provided implementation wins even over a
	// higher-priority server offload (§4.3 prototype policy). This is
	// the "Client Push" scenario arising naturally.
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterClient(regC)
	shard.RegisterServer(regS)
	x := shard.RegisterXDP(regS)
	conn := connect(t, c, regC, regS, nil)
	exercise(t, conn, 30)
	if st := x.Hook().Stats(); st.Processed != 0 {
		t.Errorf("xdp hook should be idle under client push: %+v", st)
	}
}

func TestMixedClients(t *testing.T) {
	// One client links the push implementation, the other does not: the
	// same server serves both, each over its negotiated variant (§5
	// "Mixed").
	c := startCluster(t)
	regS := core.NewRegistry()
	shard.RegisterServer(regS)
	x := shard.RegisterXDP(regS)

	regPush := core.NewRegistry()
	shard.RegisterClient(regPush)
	connPush := connect(t, c, regPush, regS, nil)

	regPlain := core.NewRegistry()
	connSrv := connect(t, c, regPlain, regS, nil)

	exercise(t, connPush, 30)
	exercise(t, connSrv, 30)
	if st := x.Hook().Stats(); st.Redirected < 30 {
		t.Errorf("xdp should have steered the plain client's traffic: %+v", st)
	}
}

func TestShardArgsValidation(t *testing.T) {
	c := startCluster(t)
	ctx := ctxT(t)
	regS := core.NewRegistry()
	shard.RegisterServer(regS)
	envS := core.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: c.net})

	// Mismatched shard count.
	bad := xdp.FieldHash{Offset: 0, Length: 4, Shards: 5}
	srvEp, _ := core.NewEndpoint("bad", spec.Seq(shard.Node(c.addrs, bad)),
		core.WithRegistry(regS), core.WithEnv(envS), core.WithPolicy(core.PreferImpl(shard.ImplServer)))
	baseL, _ := c.net.Listen("srvhost", "bad-svc")
	nl, err := srvEp.Listen(ctx, baseL)
	if err != nil {
		t.Fatal(err)
	}
	go nl.Accept(ctx)
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(core.NewRegistry()))
	raw, _ := c.net.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: "bad-svc"})
	if _, err := cliEp.Connect(ctx, raw); err == nil {
		t.Error("mismatched shard count should fail the connection")
	}
}

func TestPushConnRequestsSpreadShards(t *testing.T) {
	c := startCluster(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	shard.RegisterClient(regC)
	shard.RegisterServer(regS)
	conn := connect(t, c, regC, regS, nil)
	ctx := ctxT(t)
	seen := map[byte]bool{}
	for i := 0; i < 200; i++ {
		req := []byte(fmt.Sprintf("%04dxx", i))
		conn.Send(ctx, req)
		m, err := conn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m[:len(m)-1], req) {
			t.Fatalf("reply mismatch: %q vs %q", m, req)
		}
		seen[m[len(m)-1]] = true
	}
	if len(seen) != nshards {
		t.Errorf("only %d of %d shards used", len(seen), nshards)
	}
}
