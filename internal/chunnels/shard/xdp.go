package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
	"github.com/bertha-net/bertha/internal/xdp"
)

// XDPImpl is the accelerated server-side steering implementation: the
// simulated XDP program runs in each connection's receive path and
// redirects requests straight into the application's per-shard queues —
// no extra network hop, no re-serialization, no shared steering worker.
// The analog of the paper's 200-line XDP program.
type XDPImpl struct {
	base.Impl

	mu   sync.Mutex
	hook *xdp.Hook
	refs int
}

func newXDPImpl() *XDPImpl {
	x := &XDPImpl{hook: xdp.NewHook("xdp:rx")}
	x.hook.RegisterTelemetry(telemetry.Default())
	x.ImplInfo = core.ImplInfo{
		Name:     ImplXDP,
		Type:     Type,
		Scope:    spec.ScopeHost,
		Endpoint: spec.EndpointServer,
		Priority: 20, // kernel datapath beats userspace variants
		Location: core.LocKernel,
	}
	x.InitFn = x.init
	x.TeardownFn = x.teardown
	x.WrapFn = x.wrap
	x.ValidateFn = validateArgs
	return x
}

// Hook exposes the attach point (for statistics in experiments).
func (x *XDPImpl) Hook() *xdp.Hook { return x.hook }

// init attaches the steering program (refcounted across connections) and
// records the configuration action — the automation of what a system
// administrator would do by hand today (Figure 1).
func (x *XDPImpl) init(ctx context.Context, env *core.Env, args []wire.Value) error {
	_, fh, err := decodeArgs(args)
	if err != nil {
		return err
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.refs == 0 {
		prog := xdp.SteerProgram("shard-steer", fh)
		if err := x.hook.Attach(prog); err != nil {
			return err
		}
		env.Configure(x.hook.Name, "attach-program", prog.Name)
	}
	x.refs++
	return nil
}

func (x *XDPImpl) teardown(ctx context.Context, env *core.Env) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.refs == 0 {
		return nil
	}
	x.refs--
	if x.refs == 0 {
		if err := x.hook.Detach(); err != nil {
			return err
		}
		env.Configure(x.hook.Name, "detach-program", "shard-steer")
	}
	return nil
}

func (x *XDPImpl) wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	addrs, _, err := decodeArgs(args)
	if err != nil {
		return nil, err
	}
	qv, ok := env.Lookup(EnvQueues)
	if !ok {
		return nil, fmt.Errorf("shard: server application did not provide %s", EnvQueues)
	}
	queues, ok := qv.([]chan Steered)
	if !ok {
		return nil, fmt.Errorf("shard: %s is %T, want []chan Steered", EnvQueues, qv)
	}
	if len(queues) != len(addrs) {
		return nil, fmt.Errorf("shard: %d queues for %d shards", len(queues), len(addrs))
	}

	pctx, cancel := context.WithCancel(context.Background())
	// The receive pump is the simulated NIC->XDP path for this
	// connection: each packet runs the steering program; redirects go
	// straight to the shard queue with a reply capability bound to this
	// client's connection.
	go func() {
		reply := func(rctx context.Context, p []byte) error {
			return conn.Send(rctx, p)
		}
		for {
			m, err := conn.Recv(pctx)
			if err != nil {
				return
			}
			pkt := xdp.Packet{Data: m}
			switch x.hook.Run(&pkt) {
			case xdp.Redirect:
				q := pkt.RedirectQueue()
				if q >= 0 && q < len(queues) {
					select {
					case queues[q] <- Steered{Payload: pkt.Data, Reply: reply}:
					case <-pctx.Done():
						return
					}
				}
			case xdp.Pass:
				// Steering program absent (detached): drop to preserve
				// at-most-once semantics rather than misroute.
			case xdp.Tx:
				_ = conn.Send(pctx, pkt.Data)
			}
		}
	}()
	return &captiveConn{conn: conn, cancel: cancel}, nil
}
