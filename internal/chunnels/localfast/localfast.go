// Package localfast implements the container fast-path of Listing 1: a
// local_or_remote select node whose IPC branch moves the connection onto
// an efficient same-host transport (UNIX datagram sockets or in-process
// pipes) when both endpoints share a host, and whose network branch
// leaves the connection on the normal datagram path otherwise.
//
// Mechanically (matching the paper's prototype): negotiation resolves
// the select using host identities; when the IPC branch is chosen, the
// server's ipc implementation publishes a fresh connection token and its
// IPC listener address as negotiation parameters, the client dials that
// address, presents the token, and both sides splice the connection onto
// the IPC transport. The original network connection is retained only
// for teardown.
package localfast

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Chunnel type names.
const (
	// SelectType is the select-node combinator (local_or_remote()).
	SelectType = "local_or_remote"
	// IPCType is the same-host splice chunnel.
	IPCType = "ipc"
	// PassType is the no-op network branch.
	PassType = "passthrough"
)

// EnvListener is the Env key under which the server application provides
// its IPC listener (a core.Listener on a "unix" or "pipe" transport).
const EnvListener = "localfast:listener"

// spliceTimeout bounds how long the server waits for the client's IPC
// dial after negotiation chose the IPC branch.
const spliceTimeout = 5 * time.Second

// Node builds the Listing 1 DAG node:
//
//	wrap!(local_or_remote())
//
// expands to a select between the IPC splice and a passthrough.
func Node() spec.Node {
	return spec.Select(SelectType, nil,
		spec.Seq(spec.New(IPCType).WithScope(spec.ScopeHost)),
		spec.Seq(spec.New(PassType)),
	)
}

// Register installs the select resolver and both branch implementations.
func Register(reg *core.Registry) {
	reg.RegisterResolver(SelectType, func(args []wire.Value, branches []*spec.Stack, sctx core.SelectContext) (int, error) {
		if sctx.ClientHost != "" && sctx.ClientHost == sctx.ServerHost && sctx.Available(IPCType) {
			return 0, nil
		}
		return 1, nil
	})
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     PassType + "/nop",
			Type:     PassType,
			Endpoint: spec.EndpointBoth,
			Location: core.LocUserspace,
		},
	})
	reg.MustRegister(newIPCImpl())
}

// ipcImpl is the EndpointBoth splice implementation.
type ipcImpl struct {
	base.Impl

	mu      sync.Mutex
	waiting map[string]chan core.Conn // token -> arrival channel
	started bool
	cancel  context.CancelFunc
}

func newIPCImpl() *ipcImpl {
	impl := &ipcImpl{waiting: map[string]chan core.Conn{}}
	impl.ImplInfo = core.ImplInfo{
		Name:     IPCType + "/splice",
		Type:     IPCType,
		Scope:    spec.ScopeHost,
		Endpoint: spec.EndpointBoth,
		Priority: 10, // IPC beats the network path when feasible
		Location: core.LocUserspace,
	}
	impl.ParamsFn = impl.negotiateParams
	impl.WrapFn = impl.wrap
	impl.InitFn = impl.init
	impl.TeardownFn = impl.teardown
	return impl
}

// init starts the server-side accept loop over the application-provided
// IPC listener (idempotent across connections).
func (i *ipcImpl) init(ctx context.Context, env *core.Env, args []wire.Value) error {
	v, ok := env.Lookup(EnvListener)
	if !ok {
		return nil // client side, or server without an IPC listener
	}
	l, ok := v.(core.Listener)
	if !ok {
		return fmt.Errorf("localfast: %s is %T, want core.Listener", EnvListener, v)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.started {
		return nil
	}
	i.started = true
	loopCtx, cancel := context.WithCancel(context.Background())
	i.cancel = cancel
	env.Configure("host", "ipc-listen", l.Addr().String())
	go i.acceptLoop(loopCtx, l)
	return nil
}

func (i *ipcImpl) teardown(ctx context.Context, env *core.Env) error {
	// The accept loop is shared across connections; it stops when the
	// endpoint's environment is discarded. Nothing per-connection here.
	return nil
}

// acceptLoop matches arriving IPC connections (which lead with a token)
// to the negotiation that issued the token.
func (i *ipcImpl) acceptLoop(ctx context.Context, l core.Listener) {
	for {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		go func(conn core.Conn) {
			tctx, cancel := context.WithTimeout(ctx, spliceTimeout)
			defer cancel()
			tok, err := conn.Recv(tctx)
			if err != nil {
				conn.Close()
				return
			}
			i.mu.Lock()
			ch, ok := i.waiting[string(tok)]
			delete(i.waiting, string(tok))
			i.mu.Unlock()
			if !ok {
				conn.Close() // unknown token
				return
			}
			ch <- conn
		}(conn)
	}
}

// negotiateParams publishes [ipcAddr, token] for one connection.
func (i *ipcImpl) negotiateParams(ctx context.Context, env *core.Env, args []wire.Value) ([]wire.Value, error) {
	v, ok := env.Lookup(EnvListener)
	if !ok {
		return nil, fmt.Errorf("localfast: server has no %s attachment", EnvListener)
	}
	l, ok := v.(core.Listener)
	if !ok {
		return nil, fmt.Errorf("localfast: %s is %T, want core.Listener", EnvListener, v)
	}
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, err
	}
	token := hex.EncodeToString(raw[:])
	i.mu.Lock()
	i.waiting[token] = make(chan core.Conn, 1)
	i.mu.Unlock()
	return []wire.Value{base.EncodeAddr(l.Addr()), wire.Str(token)}, nil
}

// wrap splices both ends onto the IPC transport.
func (i *ipcImpl) wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	if len(params) < 2 {
		return nil, fmt.Errorf("localfast: missing negotiation params")
	}
	addr, err := base.DecodeAddr(params[0])
	if err != nil {
		return nil, fmt.Errorf("localfast: %w", err)
	}
	token, ok := params[1].AsString()
	if !ok {
		return nil, fmt.Errorf("localfast: bad token param")
	}

	switch side {
	case core.SideClient:
		d := env.Dialer()
		if d == nil {
			return nil, fmt.Errorf("localfast: no dialer in environment")
		}
		ipc, err := d.Dial(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("localfast: dial %s: %w", addr, err)
		}
		if err := ipc.Send(ctx, []byte(token)); err != nil {
			ipc.Close()
			return nil, fmt.Errorf("localfast: token: %w", err)
		}
		return newSpliced(ipc, conn), nil

	default: // server
		i.mu.Lock()
		ch, ok := i.waiting[token]
		i.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("localfast: unknown token %q", token)
		}
		// Drain the original (network) connection while waiting and for
		// the connection's lifetime: all data moves to the IPC path, so
		// the only traffic here is retransmitted handshakes over a lossy
		// network — which the tagged layer re-answers during Recv.
		spliced := &splicedConn{orig: conn}
		spliced.startDrain()
		select {
		case ipc := <-ch:
			spliced.Conn = ipc
			return spliced, nil
		case <-time.After(spliceTimeout):
			spliced.Close()
			i.mu.Lock()
			delete(i.waiting, token)
			i.mu.Unlock()
			return nil, fmt.Errorf("localfast: client never dialed the IPC path")
		case <-ctx.Done():
			spliced.Close()
			return nil, ctx.Err()
		}
	}
}

// splicedConn carries data on the IPC transport while keeping the
// original network connection alive (drained in the background) for
// handshake retransmissions and close propagation.
type splicedConn struct {
	core.Conn
	orig   core.Conn
	cancel context.CancelFunc
	once   sync.Once
}

func newSpliced(ipc, orig core.Conn) *splicedConn {
	s := &splicedConn{Conn: ipc, orig: orig}
	s.startDrain()
	return s
}

func (s *splicedConn) startDrain() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go func() {
		for {
			if _, err := s.orig.Recv(ctx); err != nil {
				return
			}
		}
	}()
}

// SendBuf, RecvBuf, and Headroom forward the zero-copy path to the IPC
// transport (interface embedding would otherwise hide it).
func (s *splicedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	return core.SendBuf(ctx, s.Conn, b)
}

func (s *splicedConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return core.RecvBuf(ctx, s.Conn)
}

func (s *splicedConn) Headroom() int { return core.HeadroomOf(s.Conn) }

func (s *splicedConn) Close() error {
	var err error
	if s.Conn != nil {
		err = s.Conn.Close()
	}
	s.once.Do(func() {
		if s.cancel != nil {
			s.cancel()
		}
		s.orig.Close()
	})
	return err
}
