package localfast_test

import (
	"context"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/localfast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// setup builds a server on srvHost with a localfast stack and an IPC
// listener, and a client on cliHost, both over one pipe "network"
// (standing in for UDP) plus a second pipe network standing in for the
// host-local IPC namespace.
func setup(t *testing.T, srvHost, cliHost string) (cli, srv core.Conn) {
	t.Helper()
	ctx := ctxT(t)
	net := transport.NewPipeNetwork() // "the network"
	ipc := transport.NewPipeNetwork() // "host-local IPC"

	regS, regC := core.NewRegistry(), core.NewRegistry()
	localfast.Register(regS)
	localfast.Register(regC)

	envS := core.NewEnv(srvHost)
	ipcL, err := ipc.Listen(srvHost, "app.sock")
	if err != nil {
		t.Fatal(err)
	}
	envS.Provide(localfast.EnvListener, ipcL)
	envS.SetDialer(&transport.MultiDialer{HostID: srvHost, Pipe: ipc})

	envC := core.NewEnv(cliHost)
	envC.SetDialer(&transport.MultiDialer{HostID: cliHost, Pipe: ipc})

	srvEp, err := core.NewEndpoint("container-app", spec.Seq(localfast.Node()),
		core.WithRegistry(regS), core.WithEnv(envS))
	if err != nil {
		t.Fatal(err)
	}
	cliEp, err := core.NewEndpoint("client", spec.Seq(),
		core.WithRegistry(regC), core.WithEnv(envC))
	if err != nil {
		t.Fatal(err)
	}

	baseL, err := net.Listen(srvHost, "svc")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := srvEp.Listen(ctx, baseL)
	if err != nil {
		t.Fatal(err)
	}
	srvCh := make(chan core.Conn, 1)
	go func() {
		c, err := nl.Accept(ctx)
		if err == nil {
			srvCh <- c
		}
	}()
	raw, err := net.DialFrom(ctx, cliHost, core.Addr{Net: "pipe", Addr: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cconn, err := cliEp.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case sconn := <-srvCh:
		t.Cleanup(func() { cconn.Close(); sconn.Close() })
		return cconn, sconn
	case <-time.After(10 * time.Second):
		t.Fatal("server never accepted")
		return nil, nil
	}
}

func TestSameHostUsesIPC(t *testing.T) {
	ctx := ctxT(t)
	cli, srv := setup(t, "hostA", "hostA")
	// Data flows and the spliced conns live on the IPC namespace: their
	// local addresses are "pipe" addresses under app.sock.
	if err := cli.Send(ctx, []byte("fast path")); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m) != "fast path" {
		t.Fatalf("recv: %q %v", m, err)
	}
	if err := srv.Send(ctx, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if m, err := cli.Recv(ctx); err != nil || string(m) != "reply" {
		t.Fatalf("reply: %q %v", m, err)
	}
	// The data path really is the IPC listener's namespace.
	if got := srv.LocalAddr().Addr; got != "app.sock" {
		t.Errorf("server data path address %q, want app.sock", got)
	}
	if got := cli.RemoteAddr().Addr; got != "app.sock" {
		t.Errorf("client remote %q, want app.sock", got)
	}
}

func TestCrossHostUsesNetwork(t *testing.T) {
	ctx := ctxT(t)
	cli, srv := setup(t, "hostA", "hostB")
	if err := cli.Send(ctx, []byte("over the network")); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m) != "over the network" {
		t.Fatalf("recv: %q %v", m, err)
	}
	// The passthrough branch keeps the original network path.
	if got := srv.LocalAddr().Addr; got == "app.sock" {
		t.Error("cross-host connection must not use the IPC path")
	}
}

func TestManySequentialConnections(t *testing.T) {
	// The accept loop and token matching must survive many connections
	// (the Figure 3 experiment runs 10000).
	ctx := ctxT(t)
	net := transport.NewPipeNetwork()
	ipc := transport.NewPipeNetwork()
	reg := core.NewRegistry()
	localfast.Register(reg)

	envS := core.NewEnv("h")
	ipcL, _ := ipc.Listen("h", "app.sock")
	envS.Provide(localfast.EnvListener, ipcL)
	envS.SetDialer(&transport.MultiDialer{HostID: "h", Pipe: ipc})
	envC := core.NewEnv("h")
	envC.SetDialer(&transport.MultiDialer{HostID: "h", Pipe: ipc})

	srvEp, _ := core.NewEndpoint("srv", spec.Seq(localfast.Node()), core.WithRegistry(reg), core.WithEnv(envS))
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(reg), core.WithEnv(envC))

	baseL, _ := net.Listen("h", "svc")
	nl, _ := srvEp.Listen(ctx, baseL)
	go func() {
		for {
			c, err := nl.Accept(ctx)
			if err != nil {
				return
			}
			go func(c core.Conn) {
				defer c.Close()
				for {
					m, err := c.Recv(ctx)
					if err != nil {
						return
					}
					if err := c.Send(ctx, m); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	for i := 0; i < 30; i++ {
		raw, err := net.DialFrom(ctx, "h", core.Addr{Net: "pipe", Addr: "svc"})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := cliEp.Connect(ctx, raw)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		for k := 0; k < 3; k++ { // 3 requests per connection, as in Fig. 3
			if err := conn.Send(ctx, []byte{byte(i), byte(k)}); err != nil {
				t.Fatalf("send %d/%d: %v", i, k, err)
			}
			m, err := conn.Recv(ctx)
			if err != nil || m[0] != byte(i) || m[1] != byte(k) {
				t.Fatalf("echo %d/%d: %v %v", i, k, m, err)
			}
		}
		conn.Close()
	}
}
