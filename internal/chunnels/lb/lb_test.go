package lb_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/lb"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// backends starts n echo backends that tag replies with their index.
func backends(t *testing.T, pn *transport.PipeNetwork, n int) []core.Addr {
	t.Helper()
	ctx := ctxT(t)
	var addrs []core.Addr
	for i := 0; i < n; i++ {
		i := i
		l, err := pn.Listen("srvhost", fmt.Sprintf("backend%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		addrs = append(addrs, l.Addr())
		go func() {
			for {
				conn, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(conn core.Conn) {
					for {
						m, err := conn.Recv(ctx)
						if err != nil {
							return
						}
						conn.Send(ctx, append(append([]byte{}, m...), byte(i)))
					}
				}(conn)
			}
		}()
	}
	return addrs
}

func dialLB(t *testing.T, pn *transport.PipeNetwork, addrs []core.Addr, regC, regS *core.Registry, policy core.Policy) core.Conn {
	t.Helper()
	ctx := ctxT(t)
	envS := core.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: pn})
	envC := core.NewEnv("clihost")
	envC.SetDialer(&transport.MultiDialer{HostID: "clihost", Pipe: pn})

	opts := []core.Option{core.WithRegistry(regS), core.WithEnv(envS)}
	if policy != nil {
		opts = append(opts, core.WithPolicy(policy))
	}
	srvEp, _ := core.NewEndpoint("service", spec.Seq(lb.Node(addrs)), opts...)
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC), core.WithEnv(envC))

	svcName := fmt.Sprintf("lbsvc-%p", regC)
	baseL, _ := pn.Listen("srvhost", svcName)
	t.Cleanup(func() { baseL.Close() })
	nl, err := srvEp.Listen(ctx, baseL)
	if err != nil {
		t.Fatal(err)
	}
	go nl.Accept(ctx)
	raw, _ := pn.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: svcName})
	conn, err := cliEp.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func spread(t *testing.T, conn core.Conn, n, nbackends int) map[byte]int {
	t.Helper()
	ctx := ctxT(t)
	counts := map[byte]int{}
	for i := 0; i < n; i++ {
		req := []byte(fmt.Sprintf("r%03d", i))
		if err := conn.Send(ctx, req); err != nil {
			t.Fatal(err)
		}
		m, err := conn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		counts[m[len(m)-1]]++
	}
	if len(counts) != nbackends {
		t.Errorf("used %d of %d backends: %v", len(counts), nbackends, counts)
	}
	return counts
}

func TestClientSideBalancing(t *testing.T) {
	pn := transport.NewPipeNetwork()
	addrs := backends(t, pn, 3)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	lb.RegisterClient(regC)
	lb.RegisterServer(regS)
	conn := dialLB(t, pn, addrs, regC, regS, nil) // client impl preferred
	counts := spread(t, conn, 90, 3)
	for b, c := range counts {
		if c != 30 {
			t.Errorf("backend %d handled %d, want 30 (round robin)", b, c)
		}
	}
}

func TestServerSideProxyBalancing(t *testing.T) {
	pn := transport.NewPipeNetwork()
	addrs := backends(t, pn, 3)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	lb.RegisterServer(regS)
	conn := dialLB(t, pn, addrs, regC, regS, core.PreferImpl(lb.ImplServer))
	spread(t, conn, 90, 3)
}

func TestHybridBothModalitiesAtOnce(t *testing.T) {
	// One deployment, two clients: one balances client-side, the other
	// through the server proxy — the hybrid the paper says current
	// interfaces make hard.
	pn := transport.NewPipeNetwork()
	addrs := backends(t, pn, 2)
	regS := core.NewRegistry()
	lb.RegisterServer(regS)

	regA := core.NewRegistry()
	lb.RegisterClient(regA)
	connA := dialLB(t, pn, addrs, regA, regS, nil)

	regB := core.NewRegistry()
	connB := dialLB(t, pn, addrs, regB, regS, nil)

	spread(t, connA, 40, 2)
	spread(t, connB, 40, 2)
}

func TestEmptyBackendsRejected(t *testing.T) {
	pn := transport.NewPipeNetwork()
	ctx := ctxT(t)
	regS := core.NewRegistry()
	lb.RegisterServer(regS)
	envS := core.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: pn})
	srvEp, _ := core.NewEndpoint("svc", spec.Seq(lb.Node(nil)),
		core.WithRegistry(regS), core.WithEnv(envS))
	baseL, _ := pn.Listen("srvhost", "empty")
	nl, _ := srvEp.Listen(ctx, baseL)
	go nl.Accept(ctx)
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(core.NewRegistry()))
	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "empty"})
	if _, err := cliEp.Connect(ctx, raw); err == nil {
		t.Error("empty backend list should fail negotiation")
	}
}
