// Package lb implements the load-balancing chunnel of §3.2: a service
// behind one logical address whose requests are spread across backends.
// Two implementations capture the two modalities the paper contrasts:
//
//   - lb/client: client-side balancing — the client dials the backends
//     and spreads requests itself (scales, but complicates resharding).
//   - lb/server: an application load balancer at the server — all
//     requests funnel through one proxy (simple, but a bottleneck).
//
// Because the implementation binds per connection, a deployment can run
// both at once ("hybrid load balancing"), which is exactly the case
// current interfaces make hard to deploy.
package lb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "lb"

// Implementation names.
const (
	ImplClient = Type + "/client"
	ImplServer = Type + "/server"
)

// Node builds the DAG node: lb(backends).
func Node(backends []core.Addr) spec.Node {
	return spec.New(Type, base.EncodeAddrs(backends))
}

func decodeBackends(args []wire.Value) ([]core.Addr, error) {
	addrs, err := base.AddrList(Type, args, 0)
	if err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("lb: empty backend list")
	}
	return addrs, nil
}

// RegisterClient installs the client-side balancing implementation.
func RegisterClient(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     ImplClient,
			Type:     Type,
			Endpoint: spec.EndpointClient,
			Priority: 10,
			Location: core.LocUserspace,
		},
		WrapFn: wrapClient,
		ValidateFn: func(args []wire.Value) error {
			_, err := decodeBackends(args)
			return err
		},
	})
}

// RegisterServer installs the server-side proxy implementation.
func RegisterServer(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     ImplServer,
			Type:     Type,
			Endpoint: spec.EndpointServer,
			Priority: 0,
			Location: core.LocUserspace,
		},
		WrapFn: wrapServer,
		ValidateFn: func(args []wire.Value) error {
			_, err := decodeBackends(args)
			return err
		},
	})
}

// wrapClient: the client dials every backend and round-robins requests.
func wrapClient(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	backends, err := decodeBackends(args)
	if err != nil {
		return nil, err
	}
	d := env.Dialer()
	if d == nil {
		return nil, fmt.Errorf("lb: no dialer in environment")
	}
	conns := make([]core.Conn, len(backends))
	for i, a := range backends {
		c, err := d.Dial(ctx, a)
		if err != nil {
			for _, open := range conns[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("lb: dial backend %d (%s): %w", i, a, err)
		}
		conns[i] = c
	}
	bc := &balancedConn{canonical: conn, backends: conns, in: make(chan []byte, 1024)}
	bc.ctx, bc.cancel = context.WithCancel(context.Background())
	for _, c := range conns {
		go bc.fanIn(c)
	}
	return bc, nil
}

type balancedConn struct {
	canonical core.Conn
	backends  []core.Conn
	rr        atomic.Uint64
	in        chan []byte

	ctx    context.Context
	cancel context.CancelFunc
	once   sync.Once
}

func (b *balancedConn) fanIn(c core.Conn) {
	for {
		m, err := c.Recv(b.ctx)
		if err != nil {
			return
		}
		select {
		case b.in <- m:
		case <-b.ctx.Done():
			return
		}
	}
}

func (b *balancedConn) Send(ctx context.Context, p []byte) error {
	i := int(b.rr.Add(1)-1) % len(b.backends)
	return b.backends[i].Send(ctx, p)
}

func (b *balancedConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case m := <-b.in:
		return m, nil
	case <-b.ctx.Done():
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *balancedConn) LocalAddr() core.Addr  { return b.canonical.LocalAddr() }
func (b *balancedConn) RemoteAddr() core.Addr { return b.canonical.RemoteAddr() }

func (b *balancedConn) Close() error {
	b.once.Do(func() {
		b.cancel()
		for _, c := range b.backends {
			c.Close()
		}
		b.canonical.Close()
	})
	return nil
}

// wrapServer: an L7 proxy at the server relays requests round-robin and
// replies back — the single-point application load balancer.
func wrapServer(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	backends, err := decodeBackends(args)
	if err != nil {
		return nil, err
	}
	d := env.Dialer()
	if d == nil {
		return nil, fmt.Errorf("lb: no dialer in environment")
	}
	fwd := make([]core.Conn, len(backends))
	for i, a := range backends {
		c, err := d.Dial(ctx, a)
		if err != nil {
			for _, open := range fwd[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("lb: dial backend %d (%s): %w", i, a, err)
		}
		fwd[i] = c
	}
	pctx, cancel := context.WithCancel(context.Background())
	for _, c := range fwd {
		go func(c core.Conn) {
			for {
				m, err := c.Recv(pctx)
				if err != nil {
					return
				}
				if err := conn.Send(pctx, m); err != nil {
					return
				}
			}
		}(c)
	}
	var rr atomic.Uint64
	go func() {
		for {
			m, err := conn.Recv(pctx)
			if err != nil {
				return
			}
			i := int(rr.Add(1)-1) % len(fwd)
			_ = fwd[i].Send(pctx, m)
		}
	}()
	return &proxyConn{conn: conn, cancel: cancel, fwd: fwd}, nil
}

// proxyConn is the captive server-side view of a proxied connection.
type proxyConn struct {
	conn   core.Conn
	cancel context.CancelFunc
	fwd    []core.Conn
	once   sync.Once
}

func (p *proxyConn) Send(ctx context.Context, b []byte) error { return p.conn.Send(ctx, b) }
func (p *proxyConn) Recv(ctx context.Context) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (p *proxyConn) LocalAddr() core.Addr  { return p.conn.LocalAddr() }
func (p *proxyConn) RemoteAddr() core.Addr { return p.conn.RemoteAddr() }
func (p *proxyConn) Close() error {
	p.once.Do(func() {
		p.cancel()
		for _, c := range p.fwd {
			c.Close()
		}
		p.conn.Close()
	})
	return nil
}
