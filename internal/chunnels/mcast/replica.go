package mcast

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/simnet"
)

// replicaGroup is the per-group replica machinery: the ingest service
// (stamped multicasts arrive here), the repair service (peers fetch
// missed operations), the ordered-delivery engine, and — on the leader
// or switch — the sequencer.
type replicaGroup struct {
	gid    string
	hosts  []string
	engine *engine

	cancel context.CancelFunc
}

// ensureGroup sets up (once) the replica-side services for a group on
// this host.
func (im *Impl) ensureGroup(env *core.Env, gid string, hosts []string) (*replicaGroup, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if g, ok := im.groups[gid]; ok {
		return g, nil
	}
	hv, ok := env.Lookup(EnvHost)
	if !ok {
		return nil, fmt.Errorf("mcast: replica environment missing %s", EnvHost)
	}
	host, ok := hv.(*simnet.Host)
	if !ok {
		return nil, fmt.Errorf("mcast: %s is %T, want *simnet.Host", EnvHost, hv)
	}

	self := host.Name()
	var peers []core.Addr
	isMember := false
	for _, h := range hosts {
		if h == self {
			isMember = true
			continue
		}
		peers = append(peers, repairAddr(h, gid))
	}
	if !isMember {
		return nil, fmt.Errorf("mcast: host %q is not in replica set %v", self, hosts)
	}

	ctx, cancel := context.WithCancel(context.Background())
	g := &replicaGroup{
		gid:    gid,
		hosts:  hosts,
		engine: newEngine(peers, host.Dialer()),
		cancel: cancel,
	}

	// Ingest service: stamped frames from the sequencer path.
	ingestL, err := host.Listen(ingestService(gid))
	if err != nil {
		cancel()
		return nil, fmt.Errorf("mcast: ingest listener: %w", err)
	}
	env.Configure("host:"+self, "mcast-ingest", ingestL.Addr().String())
	go g.ingestLoop(ctx, ingestL)

	// Repair service: serve delivered operations to peers.
	repairL, err := host.Listen(repairService(gid))
	if err != nil {
		cancel()
		ingestL.Close()
		return nil, fmt.Errorf("mcast: repair listener: %w", err)
	}
	go g.repairLoop(ctx, repairL)

	// Sequencer: switch entry (switch variant, installed once per
	// group) or leader software loop (host variant).
	switch im.variant {
	case ImplSwitch:
		if err := configureSwitch(env, host, gid, hosts); err != nil {
			cancel()
			ingestL.Close()
			repairL.Close()
			return nil, err
		}
	default:
		if self == hosts[0] {
			seqL, err := host.Listen(seqService(gid))
			if err != nil {
				cancel()
				ingestL.Close()
				repairL.Close()
				return nil, fmt.Errorf("mcast: sequencer listener: %w", err)
			}
			env.Configure("host:"+self, "mcast-sequencer", seqL.Addr().String())
			go g.sequencerLoop(ctx, seqL, host)
		}
	}

	im.groups[gid] = g
	go g.engine.run(ctx)
	return g, nil
}

// configureSwitch installs the multicast group and the sequencer-stamp
// entry on the rack switch — the automated analog of a network operator
// programming the Tofino (Figure 1).
func configureSwitch(env *core.Env, host *simnet.Host, gid string, hosts []string) error {
	swv, ok := env.Lookup(EnvSwitch)
	if !ok {
		return fmt.Errorf("mcast: switch variant requires %s in the replica environment", EnvSwitch)
	}
	sw, ok := swv.(*simnet.Switch)
	if !ok {
		return fmt.Errorf("mcast: %s is %T, want *simnet.Switch", EnvSwitch, swv)
	}
	members := make([]core.Addr, len(hosts))
	for i, h := range hosts {
		members[i] = ingestAddr(h, gid)
	}
	sw.AddGroup(gid, members)
	env.Configure("switch:"+sw.Name(), "add-group", gid)
	entry := &simnet.Entry{
		Name: "sequencer:" + gid,
		Cost: 2,
		Match: func(pkt *simnet.Packet) bool {
			return pkt.Dst == sw.GroupAddr(gid) && len(pkt.Payload) >= frameHeader
		},
		Action: func(s *simnet.Switch, pkt simnet.Packet) []simnet.Packet {
			putU64(pkt.Payload, 0, s.NextSeq())
			return []simnet.Packet{pkt}
		},
	}
	if err := sw.InstallEntry(entry); err != nil {
		// Another replica already installed the group's sequencer.
		if sw.HasEntry(entry.Name) {
			return nil
		}
		return fmt.Errorf("mcast: %w", err)
	}
	env.Configure("switch:"+sw.Name(), "install-entry", entry.Name)
	return nil
}

// ingestLoop feeds stamped frames into the delivery engine.
func (g *replicaGroup) ingestLoop(ctx context.Context, l core.Listener) {
	for {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		go func(conn core.Conn) {
			for {
				m, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				if len(m) < frameHeader {
					continue
				}
				seq := getU64(m, 0)
				cid := m[8:16]
				payload := m[frameHeader:]
				reply := func(rctx context.Context, p []byte) error {
					out := make([]byte, 8+len(p))
					copy(out[:8], cid)
					copy(out[8:], p)
					return conn.Send(rctx, out)
				}
				g.engine.submit(seq, payload, reply)
			}
		}(conn)
	}
}

// repairLoop serves delivered operations to peers: request [seq 8] →
// response [found 1][payload].
func (g *replicaGroup) repairLoop(ctx context.Context, l core.Listener) {
	for {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		go func(conn core.Conn) {
			for {
				m, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				if len(m) != 8 {
					continue
				}
				seq := getU64(m, 0)
				payload, ok := g.engine.lookup(seq)
				resp := make([]byte, 1+len(payload))
				if ok {
					resp[0] = 1
					copy(resp[1:], payload)
				}
				if err := conn.Send(ctx, resp); err != nil {
					return
				}
			}
		}(conn)
	}
}

// sequencerLoop is the host-variant software sequencer on the leader:
// stamp each client operation and re-multicast it to every replica's
// ingest service, routing replies back to the right client.
func (g *replicaGroup) sequencerLoop(ctx context.Context, l core.Listener, host *simnet.Host) {
	var (
		mu      sync.Mutex
		seq     uint64
		nextCID uint64
		clients = map[uint64]core.Conn{}
		fanout  []core.Conn
	)
	// Pre-dial every replica's ingest service.
	for _, h := range g.hosts {
		c, err := host.Dial(ctx, ingestAddr(h, g.gid))
		if err != nil {
			return
		}
		fanout = append(fanout, c)
	}
	// Reply pump per replica conn.
	for _, c := range fanout {
		go func(c core.Conn) {
			for {
				m, err := c.Recv(ctx)
				if err != nil {
					return
				}
				if len(m) < 8 {
					continue
				}
				cid := getU64(m, 0)
				mu.Lock()
				cli := clients[cid]
				mu.Unlock()
				if cli != nil {
					_ = cli.Send(ctx, m[8:])
				}
			}
		}(c)
	}
	for {
		conn, err := l.Accept(ctx)
		if err != nil {
			return
		}
		mu.Lock()
		nextCID++
		cid := nextCID
		clients[cid] = conn
		mu.Unlock()
		go func(conn core.Conn, cid uint64) {
			defer func() {
				mu.Lock()
				delete(clients, cid)
				mu.Unlock()
			}()
			for {
				m, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				if len(m) < frameHeader {
					continue
				}
				mu.Lock()
				seq++
				s := seq
				mu.Unlock()
				putU64(m, 0, s)
				putU64(m, 8, cid)
				for _, f := range fanout {
					_ = f.Send(ctx, m)
				}
			}
		}(conn, cid)
	}
}

// engine delivers operations in sequence order with dedup and repair.
type engine struct {
	peers  []core.Addr
	dialer core.Dialer

	mu       sync.Mutex
	expected uint64
	buf      map[uint64]bufEntry
	log      map[uint64][]byte
	out      chan Delivery

	gapTimeout time.Duration
}

type bufEntry struct {
	payload []byte
	reply   func(ctx context.Context, p []byte) error
}

// engineBuffer bounds delivered-op retention for repair.
const engineLogLimit = 100000

func newEngine(peers []core.Addr, dialer core.Dialer) *engine {
	return &engine{
		peers:      peers,
		dialer:     dialer,
		expected:   1,
		buf:        map[uint64]bufEntry{},
		log:        map[uint64][]byte{},
		out:        make(chan Delivery, 4096),
		gapTimeout: 50 * time.Millisecond,
	}
}

// submit offers one stamped operation to the engine.
func (e *engine) submit(seq uint64, payload []byte, reply func(ctx context.Context, p []byte) error) {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	e.mu.Lock()
	if seq < e.expected {
		e.mu.Unlock()
		return // duplicate of a delivered op
	}
	if _, dup := e.buf[seq]; dup {
		e.mu.Unlock()
		return
	}
	e.buf[seq] = bufEntry{payload: buf, reply: reply}
	e.drainLocked()
	e.mu.Unlock()
}

// drainLocked delivers every in-order operation.
func (e *engine) drainLocked() {
	for {
		entry, ok := e.buf[e.expected]
		if !ok {
			return
		}
		delete(e.buf, e.expected)
		if len(e.log) < engineLogLimit {
			e.log[e.expected] = entry.payload
		}
		d := Delivery{Seq: e.expected, Payload: entry.payload, Reply: entry.reply}
		e.expected++
		select {
		case e.out <- d:
		default:
			// Delivery backlog overrun: the application is not keeping
			// up; drop the oldest pending by blocking instead.
			e.mu.Unlock()
			e.out <- d
			e.mu.Lock()
		}
	}
}

// lookup serves the repair protocol.
func (e *engine) lookup(seq uint64) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.log[seq]
	return p, ok
}

// run watches for gaps and repairs them from peers.
func (e *engine) run(ctx context.Context) {
	tick := time.NewTicker(e.gapTimeout / 2)
	defer tick.Stop()
	var gapSince time.Time
	var gapSeq uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		e.mu.Lock()
		blocked := len(e.buf) > 0
		missing := e.expected
		e.mu.Unlock()
		if !blocked {
			gapSince = time.Time{}
			continue
		}
		if gapSeq != missing {
			gapSeq, gapSince = missing, time.Now()
			continue
		}
		if time.Since(gapSince) < e.gapTimeout {
			continue
		}
		// Gap persisted: try peers, then give up and mark the slot.
		payload, found := e.repair(ctx, missing)
		e.mu.Lock()
		if e.expected == missing { // still missing (no race with arrival)
			if found {
				e.buf[missing] = bufEntry{payload: payload}
			} else {
				// Commit the gap before delivering so the state is
				// consistent if we must drop the lock: a blocking send
				// on e.out while holding e.mu would deadlock against
				// senders calling submit (which takes e.mu).
				e.log[missing] = nil
				e.expected++
				d := Delivery{Seq: missing, Gap: true}
				select {
				case e.out <- d:
				default:
					e.mu.Unlock()
					e.out <- d
					e.mu.Lock()
				}
			}
			e.drainLocked()
		}
		e.mu.Unlock()
		gapSince = time.Time{}
	}
}

// repair fetches one missing operation from any peer.
func (e *engine) repair(ctx context.Context, seq uint64) ([]byte, bool) {
	if e.dialer == nil {
		return nil, false
	}
	req := make([]byte, 8)
	putU64(req, 0, seq)
	for _, peer := range e.peers {
		conn, err := e.dialer.Dial(ctx, peer)
		if err != nil {
			continue
		}
		err = conn.Send(ctx, req)
		if err == nil {
			rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
			resp, rerr := conn.Recv(rctx)
			cancel()
			if rerr == nil && len(resp) >= 1 && resp[0] == 1 {
				conn.Close()
				return resp[1:], true
			}
		}
		conn.Close()
	}
	return nil, false
}
