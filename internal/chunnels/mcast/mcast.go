// Package mcast implements the ordered multicast chunnel of Listing 2
// (ordered_mcast): clients multicast operations to a replica group and
// every replica observes the same total order, established by a
// sequencer. Two implementations are registered, following the
// NOPaxos/Speculative-Paxos designs the paper cites (§3.2
// "Network-Assisted Consensus"):
//
//   - ordered_mcast/switch: the programmable switch stamps a sequence
//     number into each group-addressed packet as it replicates it — the
//     in-network sequencer. One network pass, no extra round trips.
//   - ordered_mcast/host: a software sequencer on the lead replica
//     stamps and re-multicasts operations — the host fallback, costing
//     an extra traversal through the leader.
//
// Replicas deliver operations in sequence order with duplicate
// suppression; gaps (lost multicasts) are repaired by fetching the
// missing operation from a peer replica's log, and skipped (flagged)
// only when no replica has it.
//
// The chunnel runs over the simulated fabric (internal/simnet), which
// provides the multicast group table and the match-action sequencer —
// the architectural slot of the paper's programmable switch.
package mcast

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/simnet"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "ordered_mcast"

// Implementation names.
const (
	ImplSwitch = Type + "/switch"
	ImplHost   = Type + "/host"
)

// Env keys.
const (
	// EnvHost provides the replica's *simnet.Host (server side).
	EnvHost = "mcast:host"
	// EnvSwitch provides the *simnet.Switch for the switch variant
	// (server side, when the replica's rack has a programmable switch).
	EnvSwitch = "mcast:switch"
)

// Frame layout: [seq uint64][cid uint64][payload]. The sequencer fills
// seq; cid routes replies through the host sequencer (zero on the
// switch path, where replies flow directly).
const frameHeader = 16

// Node builds the DAG node: ordered_mcast(group, replicaHosts).
func Node(gid string, replicaHosts []string) spec.Node {
	vs := make([]wire.Value, len(replicaHosts))
	for i, h := range replicaHosts {
		vs[i] = wire.Str(h)
	}
	return spec.New(Type, wire.Str(gid), wire.List(vs...))
}

func decodeArgs(args []wire.Value) (gid string, hosts []string, err error) {
	gid, err = base.Str(Type, args, 0)
	if err != nil {
		return "", nil, err
	}
	hosts, err = base.StrList(Type, args, 1)
	if err != nil {
		return "", nil, err
	}
	if len(hosts) == 0 {
		return "", nil, fmt.Errorf("mcast: empty replica set")
	}
	return gid, hosts, nil
}

// Service name conventions on the simulated fabric.
func ingestService(gid string) string { return "mcastrx-" + gid }
func seqService(gid string) string    { return "mcastseq-" + gid }
func repairService(gid string) string { return "mcastrepair-" + gid }

func ingestAddr(host, gid string) core.Addr {
	return core.Addr{Net: "sim", Host: host, Addr: host + ":" + ingestService(gid)}
}

func repairAddr(host, gid string) core.Addr {
	return core.Addr{Net: "sim", Host: host, Addr: host + ":" + repairService(gid)}
}

// Delivery is one operation delivered to the replica application in
// group order.
type Delivery struct {
	// Seq is the global sequence number.
	Seq uint64
	// Payload is the operation.
	Payload []byte
	// Reply answers the originating client. It is nil for operations
	// recovered via peer repair (the originator hears from the replicas
	// that received the multicast directly).
	Reply func(ctx context.Context, p []byte) error
	// Gap marks a sequence number that no replica could supply; the
	// payload is empty. Applications treat it as a no-op slot.
	Gap bool
}

// Impl is the shared implementation machinery; the variant controls the
// sequencer placement.
type Impl struct {
	base.Impl
	variant string // ImplSwitch or ImplHost

	mu     sync.Mutex
	groups map[string]*replicaGroup
}

// Register installs both variants (the host fallback is mandatory, §2);
// negotiation prefers the switch sequencer when the replica environment
// has a programmable switch, and falls back to the host sequencer
// otherwise. It returns (switchImpl, hostImpl).
func Register(reg *core.Registry) (*Impl, *Impl) {
	sw := RegisterSwitch(reg)
	host := RegisterHost(reg)
	return sw, host
}

// RegisterHost installs the host-sequencer fallback variant.
func RegisterHost(reg *core.Registry) *Impl {
	impl := newImpl(ImplHost, 0, core.LocUserspace)
	reg.MustRegister(impl)
	return impl
}

// RegisterSwitch installs the switch-sequencer variant.
func RegisterSwitch(reg *core.Registry) *Impl {
	impl := newImpl(ImplSwitch, 30, core.LocSwitch)
	reg.MustRegister(impl)
	return impl
}

func newImpl(name string, prio int, loc core.Location) *Impl {
	im := &Impl{variant: name, groups: map[string]*replicaGroup{}}
	im.ImplInfo = core.ImplInfo{
		Name:         name,
		Type:         Type,
		Endpoint:     spec.EndpointBoth,
		Priority:     prio,
		Location:     loc,
		SendOverhead: frameHeader,
		Resources:    core.Resources{TableEntries: 2},
	}
	im.InitFn = im.init
	im.ParamsFn = im.params
	im.WrapFn = im.wrap
	im.ValidateFn = func(args []wire.Value) error {
		_, _, err := decodeArgs(args)
		return err
	}
	return im
}

// Deliveries returns the ordered operation stream for a group on this
// replica. It is available after the first connection Init (or after
// calling EnsureReplica).
func (im *Impl) Deliveries(gid string) (<-chan Delivery, bool) {
	im.mu.Lock()
	defer im.mu.Unlock()
	g, ok := im.groups[gid]
	if !ok {
		return nil, false
	}
	return g.engine.out, true
}

// EnsureReplica sets up the replica-side machinery (ingest, repair,
// engine, and — for the leader or switch — the sequencer) without
// waiting for a client connection. Replica applications call it at
// startup.
func (im *Impl) EnsureReplica(env *core.Env, gid string, hosts []string) error {
	_, err := im.ensureGroup(env, gid, hosts)
	return err
}

// init sets up replica-side state when running on a replica host.
func (im *Impl) init(ctx context.Context, env *core.Env, args []wire.Value) error {
	gid, hosts, err := decodeArgs(args)
	if err != nil {
		return err
	}
	if _, ok := env.Lookup(EnvHost); !ok {
		return nil // client side
	}
	_, err = im.ensureGroup(env, gid, hosts)
	return err
}

// params publishes the client's send target: the switch group address or
// the leader's sequencer service address.
func (im *Impl) params(ctx context.Context, env *core.Env, args []wire.Value) ([]wire.Value, error) {
	gid, hosts, err := decodeArgs(args)
	if err != nil {
		return nil, err
	}
	switch im.variant {
	case ImplSwitch:
		swv, ok := env.Lookup(EnvSwitch)
		if !ok {
			return nil, fmt.Errorf("mcast: switch variant requires %s in the server environment", EnvSwitch)
		}
		sw, ok := swv.(*simnet.Switch)
		if !ok {
			return nil, fmt.Errorf("mcast: %s is %T, want *simnet.Switch", EnvSwitch, swv)
		}
		return []wire.Value{base.EncodeAddr(sw.GroupAddr(gid))}, nil
	default:
		return []wire.Value{base.EncodeAddr(core.Addr{
			Net: "sim", Host: hosts[0], Addr: hosts[0] + ":" + seqService(gid),
		})}, nil
	}
}

// wrap handles the per-connection server side (replica): ingest happens
// on the shared group services, so the negotiated connection is captive.
func (im *Impl) wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	if side == core.SideServer {
		return newCaptive(conn), nil
	}
	// Single-peer client connect: treat as a group of one.
	return im.WrapMulti(ctx, []core.Conn{conn}, args, params, side, env)
}

// WrapMulti builds the client's group connection.
func (im *Impl) WrapMulti(ctx context.Context, conns []core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	if len(params) < 1 {
		return nil, fmt.Errorf("mcast: missing sequencer address parameter")
	}
	target, err := base.DecodeAddr(params[0])
	if err != nil {
		return nil, fmt.Errorf("mcast: %w", err)
	}
	d := env.Dialer()
	if d == nil {
		return nil, fmt.Errorf("mcast: no dialer in environment")
	}
	send, err := d.Dial(ctx, target)
	if err != nil {
		return nil, fmt.Errorf("mcast: dial sequencer %s: %w", target, err)
	}
	mc := &clientConn{
		group:    conns,
		send:     send,
		stripCID: im.variant == ImplSwitch,
	}
	return mc, nil
}

// clientConn is the client's ordered-multicast connection: Send
// multicasts one operation through the sequencer; Recv returns replica
// responses.
type clientConn struct {
	group    []core.Conn
	send     core.Conn
	stripCID bool
	once     sync.Once
}

func (c *clientConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
}

// SendBuf prepends the (zeroed) frame header into b's headroom; seq and
// cid are filled along the path.
func (c *clientConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	hdr := b.Prepend(frameHeader)
	for i := range hdr {
		hdr[i] = 0
	}
	return core.SendBuf(ctx, c.send, b)
}

// Headroom implements core.HeadroomConn.
func (c *clientConn) Headroom() int { return frameHeader + core.HeadroomOf(c.send) }

// RecvBuf is Recv's zero-copy form.
func (c *clientConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	b, err := core.RecvBuf(ctx, c.send)
	if err != nil {
		return nil, err
	}
	if c.stripCID {
		if b.Len() < 8 {
			n := b.Len()
			b.Release()
			return nil, fmt.Errorf("mcast: short reply (%d bytes)", n)
		}
		b.TrimFront(8)
	}
	return b, nil
}

func (c *clientConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

func (c *clientConn) LocalAddr() core.Addr  { return c.send.LocalAddr() }
func (c *clientConn) RemoteAddr() core.Addr { return c.send.RemoteAddr() }

func (c *clientConn) Close() error {
	c.once.Do(func() {
		c.send.Close()
		for _, g := range c.group {
			g.Close()
		}
	})
	return nil
}

// captive is the server-side per-connection placeholder. It drains the
// underlying connection in the background: ordered-multicast data flows
// through the group ingest service, so nothing arrives here except
// retransmitted handshakes over lossy links, which the tagged layer
// re-answers during the drain's Recv calls.
type captive struct {
	conn   core.Conn
	cancel context.CancelFunc
	once   sync.Once
}

func newCaptive(conn core.Conn) *captive {
	ctx, cancel := context.WithCancel(context.Background())
	c := &captive{conn: conn, cancel: cancel}
	go func() {
		for {
			if _, err := conn.Recv(ctx); err != nil {
				return
			}
		}
	}()
	return c
}

func (c *captive) Send(ctx context.Context, p []byte) error { return c.conn.Send(ctx, p) }
func (c *captive) Recv(ctx context.Context) ([]byte, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (c *captive) LocalAddr() core.Addr  { return c.conn.LocalAddr() }
func (c *captive) RemoteAddr() core.Addr { return c.conn.RemoteAddr() }
func (c *captive) Close() error {
	c.once.Do(c.cancel)
	return c.conn.Close()
}

func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:off+8], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off : off+8]) }
