package mcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/simnet"
	"github.com/bertha-net/bertha/internal/spec"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

const gid = "g1"

var replicaHosts = []string{"r1", "r2", "r3"}

// deployment is a 3-replica group plus clients on a one-switch fabric.
type deployment struct {
	net     *simnet.Network
	sw      *simnet.Switch
	hosts   map[string]*simnet.Host
	impls   map[string]*mcast.Impl // per replica host
	applied map[string]*[]uint64   // per replica: delivered seqs
	mu      sync.Mutex
}

// deploy builds the fabric and starts replicas. Both variants are
// registered (the host fallback is mandatory); withSwitch controls
// whether replicas expose the programmable switch to negotiation.
func deploy(t *testing.T, withSwitch bool, lossy string) *deployment {
	t.Helper()
	ctx := ctxT(t)
	d := &deployment{
		net:     simnet.New(),
		hosts:   map[string]*simnet.Host{},
		impls:   map[string]*mcast.Impl{},
		applied: map[string]*[]uint64{},
	}
	t.Cleanup(d.net.Close)
	sw, err := d.net.AddSwitch("tor", 16)
	if err != nil {
		t.Fatal(err)
	}
	d.sw = sw

	for _, h := range append(append([]string{}, replicaHosts...), "c1", "c2") {
		cfg := simnet.LinkConfig{Latency: 200 * time.Microsecond}
		if h == lossy {
			cfg.LossProb = 0.3
			cfg.Seed = 99
		}
		host, err := d.net.AddHost(h, sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.hosts[h] = host
	}

	// Start replicas.
	for _, h := range replicaHosts {
		h := h
		reg := core.NewRegistry()
		swImpl, hostImpl := mcast.Register(reg)
		impl := hostImpl
		if withSwitch {
			impl = swImpl
		}
		d.impls[h] = impl

		env := core.NewEnv(h)
		env.Provide(mcast.EnvHost, d.hosts[h])
		if withSwitch {
			env.Provide(mcast.EnvSwitch, sw)
		}
		env.SetDialer(d.hosts[h].Dialer())

		if err := impl.EnsureReplica(env, gid, replicaHosts); err != nil {
			t.Fatalf("replica %s: %v", h, err)
		}
		// Replica application: apply ops in order, echo the op + host id.
		seqs := &[]uint64{}
		d.applied[h] = seqs
		deliveries, ok := impl.Deliveries(gid)
		if !ok {
			t.Fatalf("replica %s: no delivery stream", h)
		}
		go func() {
			for del := range deliveries {
				d.mu.Lock()
				*seqs = append(*seqs, del.Seq)
				d.mu.Unlock()
				if del.Reply != nil && !del.Gap {
					del.Reply(ctx, append(append([]byte{}, del.Payload...), []byte("@"+h)...))
				}
			}
		}()

		// Bertha listener for negotiation.
		ep, err := core.NewEndpoint("replica-"+h, spec.Seq(mcast.Node(gid, replicaHosts)),
			core.WithRegistry(reg), core.WithEnv(env))
		if err != nil {
			t.Fatal(err)
		}
		base, err := d.hosts[h].Listen("rsm")
		if err != nil {
			t.Fatal(err)
		}
		nl, err := ep.Listen(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}
	return d
}

// connectClient negotiates a group connection from the named client
// host.
func (d *deployment) connectClient(t *testing.T, from string) core.Conn {
	t.Helper()
	ctx := ctxT(t)
	reg := core.NewRegistry()
	mcast.Register(reg)
	env := core.NewEnv(from)
	env.SetDialer(d.hosts[from].Dialer())
	cli, err := core.NewEndpoint("ordered-multicast-client", spec.Seq(),
		core.WithRegistry(reg), core.WithEnv(env))
	if err != nil {
		t.Fatal(err)
	}
	var raws []core.Conn
	for _, h := range replicaHosts {
		raw, err := d.hosts[from].Dial(ctx, d.hosts[h].Addr("rsm"))
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	conn, err := cli.ConnectMulti(ctx, raws)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// invoke multicasts one op and collects all three replica replies.
func invoke(t *testing.T, ctx context.Context, conn core.Conn, op string) []string {
	t.Helper()
	if err := conn.Send(ctx, []byte(op)); err != nil {
		t.Fatal(err)
	}
	var replies []string
	for len(replies) < len(replicaHosts) {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		m, err := conn.Recv(rctx)
		cancel()
		if err != nil {
			t.Fatalf("awaiting replies to %q (have %v): %v", op, replies, err)
		}
		replies = append(replies, string(m))
	}
	return replies
}

func sameOrder(t *testing.T, d *deployment, minOps int) {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	ref := *d.applied[replicaHosts[0]]
	if len(ref) < minOps {
		t.Fatalf("replica %s applied only %d ops", replicaHosts[0], len(ref))
	}
	for _, h := range replicaHosts[1:] {
		got := *d.applied[h]
		if len(got) != len(ref) {
			t.Fatalf("replica %s applied %d ops, %s applied %d", h, len(got), replicaHosts[0], len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("divergent order at %d: %s=%d %s=%d", i, replicaHosts[0], ref[i], h, got[i])
			}
		}
	}
}

func TestOrderedMulticastAllReplicasSameOrder(t *testing.T) {
	for name, withSwitch := range map[string]bool{"switch": true, "host": false} {
		withSwitch := withSwitch
		t.Run(name, func(t *testing.T) {
			ctx := ctxT(t)
			d := deploy(t, withSwitch, "")
			c1 := d.connectClient(t, "c1")
			c2 := d.connectClient(t, "c2")

			// Two clients race 20 ops each.
			var wg sync.WaitGroup
			for ci, conn := range []core.Conn{c1, c2} {
				wg.Add(1)
				go func(ci int, conn core.Conn) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						replies := invoke(t, ctx, conn, fmt.Sprintf("op-%d-%d", ci, i))
						if len(replies) != 3 {
							t.Errorf("got %d replies", len(replies))
						}
					}
				}(ci, conn)
			}
			wg.Wait()
			// Allow deliveries to drain, then compare orders.
			time.Sleep(200 * time.Millisecond)
			sameOrder(t, d, 40)
		})
	}
}

func TestSwitchSequencerStampsContiguously(t *testing.T) {
	ctx := ctxT(t)
	d := deploy(t, true, "")
	c1 := d.connectClient(t, "c1")
	for i := 0; i < 10; i++ {
		invoke(t, ctx, c1, fmt.Sprintf("op%d", i))
	}
	time.Sleep(100 * time.Millisecond)
	d.mu.Lock()
	defer d.mu.Unlock()
	seqs := *d.applied["r1"]
	if len(seqs) != 10 {
		t.Fatalf("applied %d", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Errorf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	// The switch table holds the group's sequencer entry.
	if !d.sw.HasEntry("sequencer:" + gid) {
		t.Error("sequencer entry not installed")
	}
	_, used := d.sw.Capacity()
	if used == 0 {
		t.Error("switch capacity accounting")
	}
}

func TestRepairRecoversLostMulticast(t *testing.T) {
	// Replica r3's downlink drops 30% of packets: it misses multicasts
	// and must repair them from peers, still applying the same order.
	ctx := ctxT(t)
	d := deploy(t, true, "r3")
	c1 := d.connectClient(t, "c1")

	for i := 0; i < 30; i++ {
		// Quorum of 2 suffices under loss; collect at least 2 replies.
		if err := c1.Send(ctx, []byte(fmt.Sprintf("op%d", i))); err != nil {
			t.Fatal(err)
		}
		got := 0
		for got < 2 {
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			_, err := c1.Recv(rctx)
			cancel()
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			got++
		}
	}
	// Give the repair machinery time to fill gaps.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.mu.Lock()
		n := len(*d.applied["r3"])
		d.mu.Unlock()
		if n >= 30 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	sameOrder(t, d, 30)
}

func TestHostFallbackWorksWithoutSwitchEnv(t *testing.T) {
	// The host variant must run on a fabric whose switch offers no
	// programmability (EnvSwitch absent).
	ctx := ctxT(t)
	d := &deployment{
		net:     simnet.New(),
		hosts:   map[string]*simnet.Host{},
		impls:   map[string]*mcast.Impl{},
		applied: map[string]*[]uint64{},
	}
	t.Cleanup(d.net.Close)
	sw, _ := d.net.AddSwitch("dumb", 0) // zero table capacity
	for _, h := range append(append([]string{}, replicaHosts...), "c1") {
		host, err := d.net.AddHost(h, sw, simnet.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		d.hosts[h] = host
	}
	for _, h := range replicaHosts {
		reg := core.NewRegistry()
		_, impl := mcast.Register(reg)
		env := core.NewEnv(h)
		env.Provide(mcast.EnvHost, d.hosts[h])
		env.SetDialer(d.hosts[h].Dialer())
		if err := impl.EnsureReplica(env, gid, replicaHosts); err != nil {
			t.Fatal(err)
		}
		deliveries, _ := impl.Deliveries(gid)
		seqs := &[]uint64{}
		d.applied[h] = seqs
		go func() {
			for del := range deliveries {
				d.mu.Lock()
				*seqs = append(*seqs, del.Seq)
				d.mu.Unlock()
				if del.Reply != nil {
					del.Reply(ctx, []byte("ok"))
				}
			}
		}()
		ep, _ := core.NewEndpoint("r-"+h, spec.Seq(mcast.Node(gid, replicaHosts)),
			core.WithRegistry(reg), core.WithEnv(env))
		base, _ := d.hosts[h].Listen("rsm")
		nl, _ := ep.Listen(ctx, base)
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}
	conn := d.connectClient(t, "c1")
	for i := 0; i < 5; i++ {
		replies := invoke(t, ctxT(t), conn, fmt.Sprintf("op%d", i))
		if len(replies) != 3 {
			t.Fatalf("replies: %v", replies)
		}
	}
	sameOrder(t, d, 5)
}
