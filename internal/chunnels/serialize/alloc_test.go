package serialize

import (
	"context"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/wire"
)

// loopConn is a single-message loopback BufConn: SendBuf hands the
// buffer straight to the next RecvBuf, with zero copies or allocations.
type loopConn struct {
	ch chan *wire.Buf
}

func newLoopConn() *loopConn { return &loopConn{ch: make(chan *wire.Buf, 1)} }

func (c *loopConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(0, p))
}

func (c *loopConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	c.ch <- b
	return nil
}

func (c *loopConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

func (c *loopConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return <-c.ch, nil
}

func (c *loopConn) Headroom() int         { return 0 }
func (c *loopConn) LocalAddr() core.Addr  { return core.Addr{} }
func (c *loopConn) RemoteAddr() core.Addr { return core.Addr{} }
func (c *loopConn) Close() error          { return nil }

// TestTagAllocs pins the zero-copy tag path: prepending the format tag
// on send and trimming it on receive performs no allocations once the
// buffer pool is warm.
func TestTagAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	conn, err := New(newLoopConn(), FormatBincode)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	bc := conn.(core.BufConn)
	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(conn)

	avg := testing.AllocsPerRun(200, func() {
		b := wire.NewBufFrom(headroom, payload)
		if err := bc.SendBuf(ctx, b); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		r, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if r.Len() != len(payload) {
			t.Errorf("len = %d, want %d", r.Len(), len(payload))
		}
		r.Release()
	})
	if avg >= 1 {
		t.Fatalf("serialize tag round trip allocates %.2f objects/op, want 0", avg)
	}
}
