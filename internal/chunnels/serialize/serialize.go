// Package serialize implements the serialization chunnel (§3.2
// "Serialization"): with it in the DAG, applications send and receive
// typed objects rather than bytes. The wire format is the repo's compact
// binary codec (the bincode analog); the chunnel's negotiated argument
// names the format so both endpoints agree, and new formats (including
// hardware-accelerated ones) can be adopted by registering a new
// implementation — without touching application code.
package serialize

import (
	"context"
	"fmt"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "serialize"

// FormatBincode is the built-in compact binary format.
const FormatBincode = "bincode"

// Node builds the DAG node: serialize(format).
func Node(format string) spec.Node {
	return spec.New(Type, wire.Str(format))
}

// formatTag maps format names to the wire tag prepended to each message,
// letting the receiver detect a format mismatch immediately.
var formatTag = map[string]byte{
	FormatBincode: 0x01,
}

// Register installs the userspace fallback implementation.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         Type + "/" + FormatBincode,
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: 1, // format tag
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			format, err := base.Str(Type, args, 0)
			if err != nil {
				format = FormatBincode
			}
			return New(conn, format)
		},
	})
}

// New wraps conn with the named format's message tagging.
func New(conn core.Conn, format string) (core.Conn, error) {
	tag, ok := formatTag[format]
	if !ok {
		return nil, fmt.Errorf("serialize: unknown format %q", format)
	}
	return &tagConn{Conn: conn, tag: tag}, nil
}

type tagConn struct {
	core.Conn
	tag byte
}

func (c *tagConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
}

// SendBuf prepends the format tag into b's headroom.
func (c *tagConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	b.Prepend(1)[0] = c.tag
	return core.SendBuf(ctx, c.Conn, b)
}

// SendBufs stamps the format tag onto every message in one pass, then
// hands the burst down whole.
func (c *tagConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		b.Prepend(1)[0] = c.tag
	}
	return core.SendBufs(ctx, c.Conn, bs)
}

// RecvBufs checks and trims the format tag across a burst in one pass.
// Mismatched messages are dropped individually (datagram semantics) and
// the survivors compact into into's prefix; the call only fails when an
// entire burst is bad.
func (c *tagConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	for {
		n, err := core.RecvBufs(ctx, c.Conn, into)
		if err != nil {
			return 0, err
		}
		out := 0
		var firstErr error
		for i := 0; i < n; i++ {
			b := into[i]
			if b.Len() == 0 || b.Bytes()[0] != c.tag {
				got := firstByte(b.Bytes())
				b.Release()
				if firstErr == nil {
					firstErr = fmt.Errorf("serialize: format mismatch (tag %#x)", got)
				}
				continue
			}
			b.TrimFront(1)
			into[out] = b
			out++
		}
		if out > 0 {
			return out, nil
		}
		if firstErr != nil {
			return 0, firstErr
		}
	}
}

// Headroom implements core.HeadroomConn.
func (c *tagConn) Headroom() int { return 1 + core.HeadroomOf(c.Conn) }

func (c *tagConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf checks and trims the format tag in place.
func (c *tagConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	b, err := core.RecvBuf(ctx, c.Conn)
	if err != nil {
		return nil, err
	}
	if b.Len() == 0 || b.Bytes()[0] != c.tag {
		got := firstByte(b.Bytes())
		b.Release()
		return nil, fmt.Errorf("serialize: format mismatch (tag %#x)", got)
	}
	b.TrimFront(1)
	return b, nil
}

func firstByte(p []byte) byte {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// Codec marshals values of T to and from the binary wire format.
type Codec[T any] interface {
	Marshal(e *wire.Encoder, v T) error
	Unmarshal(d *wire.Decoder) (T, error)
}

// ObjConn is the typed view of a connection whose stack includes the
// serialization chunnel: "applications send and receive objects rather
// than bytes" (§3.2).
type ObjConn[T any] struct {
	conn  core.Conn
	codec Codec[T]
}

// Objects wraps a negotiated connection with a typed codec.
func Objects[T any](conn core.Conn, codec Codec[T]) *ObjConn[T] {
	return &ObjConn[T]{conn: conn, codec: codec}
}

// Send marshals and transmits one object. The encoded bytes are copied
// once into a pooled buffer with stack headroom; every layer below
// prepends in place.
func (o *ObjConn[T]) Send(ctx context.Context, v T) error {
	e := wire.NewEncoder(nil)
	if err := o.codec.Marshal(e, v); err != nil {
		return fmt.Errorf("serialize: marshal: %w", err)
	}
	return core.SendBuf(ctx, o.conn, wire.NewBufFrom(core.HeadroomOf(o.conn), e.Bytes()))
}

// Recv receives and unmarshals one object.
func (o *ObjConn[T]) Recv(ctx context.Context) (T, error) {
	var zero T
	p, err := o.conn.Recv(ctx)
	if err != nil {
		return zero, err
	}
	d := wire.NewDecoder(p)
	v, err := o.codec.Unmarshal(d)
	if err != nil {
		return zero, fmt.Errorf("serialize: unmarshal: %w", err)
	}
	if err := d.Finish(); err != nil {
		return zero, fmt.Errorf("serialize: unmarshal: %w", err)
	}
	return v, nil
}

// Conn exposes the underlying byte connection (e.g. for Close).
func (o *ObjConn[T]) Conn() core.Conn { return o.conn }

// Close closes the underlying connection.
func (o *ObjConn[T]) Close() error { return o.conn.Close() }

// StringCodec marshals plain strings.
type StringCodec struct{}

// Marshal implements Codec.
func (StringCodec) Marshal(e *wire.Encoder, v string) error {
	e.PutString(v)
	return nil
}

// Unmarshal implements Codec.
func (StringCodec) Unmarshal(d *wire.Decoder) (string, error) {
	s := d.String()
	return s, d.Err()
}

// BytesCodec marshals raw byte slices.
type BytesCodec struct{}

// Marshal implements Codec.
func (BytesCodec) Marshal(e *wire.Encoder, v []byte) error {
	e.PutBytes(v)
	return nil
}

// Unmarshal implements Codec.
func (BytesCodec) Unmarshal(d *wire.Decoder) ([]byte, error) {
	b := d.BytesCopy()
	return b, d.Err()
}

// ValueCodec marshals wire.Value trees.
type ValueCodec struct{}

// Marshal implements Codec.
func (ValueCodec) Marshal(e *wire.Encoder, v wire.Value) error {
	v.Encode(e)
	return nil
}

// Unmarshal implements Codec.
func (ValueCodec) Unmarshal(d *wire.Decoder) (wire.Value, error) {
	v := wire.DecodeValue(d)
	return v, d.Err()
}
