package wire

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v Value) Value {
	t.Helper()
	e := NewEncoder(nil)
	v.Encode(e)
	d := NewDecoder(e.Bytes())
	got := DecodeValue(d)
	if err := d.Finish(); err != nil {
		t.Fatalf("decode %s: %v", v, err)
	}
	return got
}

func TestValueRoundTrip(t *testing.T) {
	cases := []Value{
		Nil(),
		Bool(true),
		Bool(false),
		Int(-42),
		Int(math.MaxInt64),
		Uint(math.MaxUint64),
		Float(2.5),
		Str("chunnel"),
		Str(""),
		BytesVal([]byte{0, 1, 2}),
		BytesVal(nil),
		List(),
		List(Int(1), Str("two"), List(Bool(true))),
		Map(nil),
		Map(map[string]Value{"a": Int(1), "b": List(Str("x"))}),
	}
	for _, v := range cases {
		got := roundTripValue(t, v)
		if !got.Equal(v) {
			t.Errorf("round trip %s: got %s", v, got)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v, ok := Int(-5).AsInt(); !ok || v != -5 {
		t.Error("AsInt on Int")
	}
	if v, ok := Uint(5).AsInt(); !ok || v != 5 {
		t.Error("AsInt on small Uint should convert")
	}
	if _, ok := Uint(math.MaxUint64).AsInt(); ok {
		t.Error("AsInt on huge Uint should fail")
	}
	if v, ok := Int(7).AsUint(); !ok || v != 7 {
		t.Error("AsUint on non-negative Int should convert")
	}
	if _, ok := Int(-1).AsUint(); ok {
		t.Error("AsUint on negative Int should fail")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("AsInt on Str should fail")
	}
	if !Nil().IsNil() || Int(0).IsNil() {
		t.Error("IsNil")
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("AsString")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool")
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Error("AsFloat")
	}
	if l, ok := List(Int(1)).AsList(); !ok || len(l) != 1 {
		t.Error("AsList")
	}
	if m, ok := Map(map[string]Value{"k": Nil()}).AsMap(); !ok || len(m) != 1 {
		t.Error("AsMap")
	}
	if b, ok := BytesVal([]byte{9}).AsBytes(); !ok || b[0] != 9 {
		t.Error("AsBytes")
	}
}

func TestValueEqual(t *testing.T) {
	if Int(1).Equal(Uint(1)) {
		t.Error("Int(1) should not Equal Uint(1): kinds differ")
	}
	if !List(Int(1)).Equal(List(Int(1))) {
		t.Error("equal lists")
	}
	if List(Int(1)).Equal(List(Int(2))) {
		t.Error("unequal lists")
	}
	if List(Int(1)).Equal(List(Int(1), Int(2))) {
		t.Error("length mismatch")
	}
	a := Map(map[string]Value{"x": Int(1)})
	b := Map(map[string]Value{"x": Int(1)})
	c := Map(map[string]Value{"y": Int(1)})
	if !a.Equal(b) || a.Equal(c) {
		t.Error("map equality")
	}
	nan := Float(math.NaN())
	if nan.Equal(nan) {
		t.Error("NaN must not equal NaN (float semantics)")
	}
}

// TestValueCanonicalEncoding checks that map encoding is deterministic
// (sorted keys) so negotiation can hash encoded specs.
func TestValueCanonicalEncoding(t *testing.T) {
	mk := func() Value {
		m := map[string]Value{}
		for i := 0; i < 20; i++ {
			m[strings.Repeat("k", i+1)] = Int(int64(i))
		}
		return Map(m)
	}
	e1 := NewEncoder(nil)
	mk().Encode(e1)
	for trial := 0; trial < 10; trial++ {
		e2 := NewEncoder(nil)
		mk().Encode(e2)
		if string(e1.Bytes()) != string(e2.Bytes()) {
			t.Fatal("map encoding is not canonical across iterations")
		}
	}
}

func TestValueDepthLimit(t *testing.T) {
	v := Int(0)
	for i := 0; i < maxValueDepth+5; i++ {
		v = List(v)
	}
	e := NewEncoder(nil)
	v.Encode(e)
	d := NewDecoder(e.Bytes())
	DecodeValue(d)
	if d.Err() == nil {
		t.Error("expected depth-limit error decoding deeply nested value")
	}
}

func TestValueStringRendering(t *testing.T) {
	v := Map(map[string]Value{
		"b": List(Int(1), Str("x")),
		"a": Bool(true),
	})
	got := v.String()
	want := `{a: true, b: [1, "x"]}`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if Uint(3).String() != "3u" {
		t.Errorf("Uint String: %s", Uint(3).String())
	}
	if BytesVal([]byte{0xAB}).String() != "0xab" {
		t.Errorf("Bytes String: %s", BytesVal([]byte{0xAB}).String())
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
	for k := KindNil; k <= KindMap; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
}

// randomValue builds an arbitrary Value for property testing.
func randomValue(r *rand.Rand, depth int) Value {
	max := 9
	if depth > 3 {
		max = 7 // no containers below depth 3
	}
	switch r.Intn(max) {
	case 0:
		return Nil()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Uint(r.Uint64())
	case 4:
		return Float(r.NormFloat64())
	case 5:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return Str(string(b))
	case 6:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return BytesVal(b)
	case 7:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth+1)
		}
		return List(vs...)
	default:
		n := r.Intn(4)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			m[string(rune('a'+i))] = randomValue(r, depth+1)
		}
		return Map(m)
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		v := randomValue(r, 0)
		e := NewEncoder(nil)
		v.Encode(e)
		d := NewDecoder(e.Bytes())
		got := DecodeValue(d)
		if d.Finish() != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
