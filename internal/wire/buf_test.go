package wire

import (
	"bytes"
	"testing"
)

func TestBufPrependTrim(t *testing.T) {
	b := NewBufFrom(16, []byte("payload"))
	if got := b.Headroom(); got != 16 {
		t.Fatalf("Headroom = %d, want 16", got)
	}
	copy(b.Prepend(4), "hdr:")
	if !bytes.Equal(b.Bytes(), []byte("hdr:payload")) {
		t.Fatalf("after Prepend: %q", b.Bytes())
	}
	b.TrimFront(4)
	if !bytes.Equal(b.Bytes(), []byte("payload")) {
		t.Fatalf("after TrimFront: %q", b.Bytes())
	}
	if got := b.Headroom(); got != 16 {
		t.Fatalf("Headroom after trim round-trip = %d, want 16", got)
	}
	b.Release()
}

func TestBufPrependGrows(t *testing.T) {
	b := NewBufFrom(2, []byte("abc"))
	copy(b.Prepend(8), "12345678")
	if !bytes.Equal(b.Bytes(), []byte("12345678abc")) {
		t.Fatalf("grown prepend: %q", b.Bytes())
	}
	if b.Headroom() != DefaultHeadroom {
		t.Fatalf("headroom after grow = %d, want %d", b.Headroom(), DefaultHeadroom)
	}
	b.Release()
}

func TestBufExtendTrimBack(t *testing.T) {
	b := NewBufFrom(0, []byte("msg"))
	copy(b.Extend(3), "tag")
	if !bytes.Equal(b.Bytes(), []byte("msgtag")) {
		t.Fatalf("after Extend: %q", b.Bytes())
	}
	b.TrimBack(3)
	if !bytes.Equal(b.Bytes(), []byte("msg")) {
		t.Fatalf("after TrimBack: %q", b.Bytes())
	}
	b.Release()
}

func TestBufExtendGrows(t *testing.T) {
	b := NewBuf(0, bufClasses[0])
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(i)
	}
	copy(b.Extend(4), "tail")
	if b.Len() != bufClasses[0]+4 {
		t.Fatalf("Len = %d", b.Len())
	}
	if !bytes.Equal(b.Bytes()[bufClasses[0]:], []byte("tail")) {
		t.Fatalf("tail = %q", b.Bytes()[bufClasses[0]:])
	}
	if b.Bytes()[1] != 1 || b.Bytes()[255] != 255 {
		t.Fatal("payload corrupted by grow")
	}
	b.Release()
}

func TestBufTruncate(t *testing.T) {
	b := NewBuf(8, 100)
	b.Truncate(5)
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	b.Release()
}

func TestBufCopyOut(t *testing.T) {
	b := NewBufFrom(4, []byte("hello"))
	p := b.CopyOut()
	if !bytes.Equal(p, []byte("hello")) {
		t.Fatalf("CopyOut = %q", p)
	}
	if len(p) != cap(p) {
		t.Fatalf("CopyOut not exact-size: len %d cap %d", len(p), cap(p))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes after CopyOut did not panic")
		}
	}()
	b.Bytes()
}

func TestBufDetach(t *testing.T) {
	b := NewBufFrom(4, []byte("keepme"))
	p := b.Detach()
	if !bytes.Equal(p, []byte("keepme")) {
		t.Fatalf("Detach = %q", p)
	}
	// The detached slice must not be affected by subsequent pool reuse.
	for i := 0; i < 64; i++ {
		nb := NewBuf(4, 6)
		copy(nb.Bytes(), "XXXXXX")
		nb.Release()
	}
	if !bytes.Equal(p, []byte("keepme")) {
		t.Fatalf("detached bytes corrupted: %q", p)
	}
}

func TestBufUseAfterRelease(t *testing.T) {
	b := NewBuf(0, 4)
	b.Release()
	b.Release() // double release is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("use after release did not panic")
		}
	}()
	b.Prepend(1)
}

func TestWrapBuf(t *testing.T) {
	p := []byte("wrapped")
	b := WrapBuf(p)
	if !bytes.Equal(b.Bytes(), p) {
		t.Fatalf("WrapBuf = %q", b.Bytes())
	}
	if b.Headroom() != 0 {
		t.Fatalf("WrapBuf headroom = %d", b.Headroom())
	}
	copy(b.Prepend(2), "x:")
	if !bytes.Equal(b.Bytes(), []byte("x:wrapped")) {
		t.Fatalf("WrapBuf prepend = %q", b.Bytes())
	}
	b.Release()
}

func TestBufClassSelection(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{0, 0}, {512, 0}, {513, 1}, {4096, 1}, {60001, 3}, {65536, 3}, {65537, -1},
	} {
		if got := classFor(tc.n); got != tc.class {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
	// Oversized buffers work, just unpooled.
	b := NewBuf(0, 70000)
	if b.Len() != 70000 {
		t.Fatalf("oversized Len = %d", b.Len())
	}
	b.Release()
}

func TestBufPoolReuse(t *testing.T) {
	// Steady-state send path should be allocation-free.
	warm := NewBuf(DefaultHeadroom, 100)
	warm.Release()
	allocs := testing.AllocsPerRun(100, func() {
		b := NewBuf(DefaultHeadroom, 100)
		copy(b.Prepend(8), "header88")
		b.TrimFront(8)
		b.Release()
	})
	if allocs > 0 {
		t.Fatalf("pooled round-trip allocates %v/op, want 0", allocs)
	}
}
