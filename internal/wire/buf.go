// Message buffers for the zero-copy data plane.
//
// A Buf is a pooled byte buffer with reserved headroom: space in front of
// the payload that header-adding chunnels claim with Prepend instead of
// allocating a fresh buffer and copying the whole message. The receive
// path is the mirror image: transports read datagrams into pooled
// buffers and each chunnel consumes its header with TrimFront. A chunnel
// DAG of depth d therefore costs O(1) allocations per message instead of
// O(d) — the layering tax §5 of the paper argues a well-designed API
// avoids.
//
// Ownership is linear: exactly one owner at a time. Creating or
// receiving a Buf makes the caller its owner; passing it to SendBuf
// transfers ownership to the connection. The final owner calls Release
// (return the backing to the pool), CopyOut (exact-size copy for a
// caller that wants a plain []byte), or Detach (take the bytes out of
// pool management). Using a Buf after ownership was given away corrupts
// messages; the released flag catches the common cases by panicking.
package wire

import (
	"sync"
	"sync/atomic"
)

// DefaultHeadroom is the headroom reserved when the caller cannot see
// the negotiated stack's exact header requirement. It comfortably covers
// the built-in chunnels (tag 1 + frame 8 + seq 9 + mcast 16 + nonce 12).
const DefaultHeadroom = 64

// bufClasses are the pooled backing-array size classes. The largest
// covers a transport datagram (MaxDatagram+1 = 60001) with headroom.
var bufClasses = [...]int{512, 4096, 32768, 65536}

var bufPools [len(bufClasses)]sync.Pool

// Buf is a pooled message buffer with headroom. The zero value is not
// usable; obtain one with NewBuf, NewBufFrom, or WrapBuf.
type Buf struct {
	store    []byte
	off, end int
	class    int8 // index into bufClasses, or -1 when not pooled
	released bool

	// Trace context riding alongside the payload (never part of the
	// stored bytes): the tracing layer stamps sampled sends here at the
	// top of the stack, the trace chunnel serializes the context into
	// wire headroom at the bottom, and the receive side parses it back
	// before the stack runs. The fields survive Prepend/Extend backing
	// swaps (those exchange store/class only) and are cleared when a
	// pooled buffer is reused.
	traceID   uint64
	traceSpan uint32
	traceHop  uint8
	traced    bool
}

// SetTrace marks the message as sampled, attaching the trace context the
// downstream trace chunnel serializes into wire headroom.
func (b *Buf) SetTrace(id uint64, span uint32, hop uint8) {
	b.traceID = id
	b.traceSpan = span
	b.traceHop = hop
	b.traced = true
}

// ClearTrace removes the trace context (e.g. before echoing a received
// buffer back, so the reply is not attributed to the request's trace).
func (b *Buf) ClearTrace() {
	b.traceID = 0
	b.traceSpan = 0
	b.traceHop = 0
	b.traced = false
}

// Traced reports whether the message carries a sampled trace context.
func (b *Buf) Traced() bool { return b.traced }

// Trace returns the trace context; ok is false for unsampled messages.
func (b *Buf) Trace() (id uint64, span uint32, hop uint8, ok bool) {
	return b.traceID, b.traceSpan, b.traceHop, b.traced
}

// bufsOutstanding counts pooled buffers currently checked out: created
// or fetched from a pool and not yet released or detached. It is a
// process-health signal (a steady climb is a leak), published as a
// telemetry gauge at snapshot time.
var bufsOutstanding atomic.Int64

// BufsOutstanding returns the number of pooled buffers currently live.
func BufsOutstanding() int64 { return bufsOutstanding.Load() }

func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

func getBuf(total int) *Buf {
	ci := classFor(total)
	if ci < 0 {
		return &Buf{store: make([]byte, total), class: -1}
	}
	bufsOutstanding.Add(1)
	if v := bufPools[ci].Get(); v != nil {
		b := v.(*Buf)
		b.released = false
		// A recycled buffer must not inherit its previous life's trace
		// context.
		b.ClearTrace()
		return b
	}
	return &Buf{store: make([]byte, bufClasses[ci]), class: int8(ci)}
}

// NewBuf returns a buffer whose payload section is n bytes long,
// preceded by headroom bytes of reserved space for Prepend. The payload
// contents are unspecified; the caller fills Bytes().
func NewBuf(headroom, n int) *Buf {
	if headroom < 0 || n < 0 {
		panic("wire: negative buffer size")
	}
	b := getBuf(headroom + n)
	b.off = headroom
	b.end = headroom + n
	return b
}

// NewBufFrom returns a pooled buffer holding a copy of p with the given
// headroom. p is not retained.
func NewBufFrom(headroom int, p []byte) *Buf {
	b := NewBuf(headroom, len(p))
	copy(b.store[b.off:], p)
	return b
}

// WrapBuf adopts p as an unpooled buffer with no headroom. The buffer
// takes ownership of p; Release is a no-op (the bytes are left to the
// garbage collector).
func WrapBuf(p []byte) *Buf {
	return &Buf{store: p, end: len(p), class: -1}
}

func (b *Buf) check() {
	if b.released {
		panic("wire: Buf used after Release/Detach")
	}
}

// Bytes returns the current message. The slice is invalidated by
// Prepend, Extend, Release, CopyOut, and Detach.
func (b *Buf) Bytes() []byte { b.check(); return b.store[b.off:b.end] }

// Len returns the message length.
func (b *Buf) Len() int { b.check(); return b.end - b.off }

// Headroom returns the bytes available for Prepend without reallocation.
func (b *Buf) Headroom() int { b.check(); return b.off }

// Tailroom returns the bytes available for Extend without reallocation.
func (b *Buf) Tailroom() int { b.check(); return len(b.store) - b.end }

// Prepend grows the message by n bytes at the front and returns the new
// front section for the caller to fill. When headroom is exhausted the
// backing is replaced by a larger pooled one (one copy) — correctness is
// preserved, only the fast path is lost.
func (b *Buf) Prepend(n int) []byte {
	b.check()
	if n < 0 {
		panic("wire: negative prepend")
	}
	if n <= b.off {
		b.off -= n
		return b.store[b.off : b.off+n]
	}
	cur := b.store[b.off:b.end]
	nb := getBuf(DefaultHeadroom + n + len(cur))
	copy(nb.store[DefaultHeadroom+n:], cur)
	// Swap backings: b keeps its identity for the caller, nb carries the
	// old backing home to its pool.
	b.store, nb.store = nb.store, b.store
	b.class, nb.class = nb.class, b.class
	nb.released = false
	b.off = DefaultHeadroom
	b.end = DefaultHeadroom + n + len(cur)
	nb.off, nb.end = 0, 0
	nb.Release()
	return b.store[b.off : b.off+n]
}

// Extend grows the message by n bytes at the end and returns the new
// tail section for the caller to fill.
func (b *Buf) Extend(n int) []byte {
	b.check()
	if n < 0 {
		panic("wire: negative extend")
	}
	if b.end+n <= len(b.store) {
		s := b.store[b.end : b.end+n]
		b.end += n
		return s
	}
	cur := b.store[b.off:b.end]
	nb := getBuf(b.off + len(cur) + n)
	copy(nb.store[b.off:], cur)
	b.store, nb.store = nb.store, b.store
	b.class, nb.class = nb.class, b.class
	nb.released = false
	b.end = b.off + len(cur) + n
	nb.off, nb.end = 0, 0
	nb.Release()
	return b.store[b.end-n : b.end]
}

// TrimFront drops n bytes from the front of the message — how a chunnel
// consumes its header on the receive path. The dropped bytes become
// headroom, so an echo path can Prepend them back without reallocating.
func (b *Buf) TrimFront(n int) {
	b.check()
	if n < 0 || n > b.end-b.off {
		panic("wire: trim beyond message")
	}
	b.off += n
}

// TrimBack drops n bytes from the end of the message.
func (b *Buf) TrimBack(n int) {
	b.check()
	if n < 0 || n > b.end-b.off {
		panic("wire: trim beyond message")
	}
	b.end -= n
}

// Truncate shortens the message to n bytes (n ≤ Len) — used after
// reading a datagram of unknown size into a full-size buffer.
func (b *Buf) Truncate(n int) {
	b.check()
	if n < 0 || n > b.end-b.off {
		panic("wire: truncate beyond message")
	}
	b.end = b.off + n
}

// Release returns the backing array to its pool. It is the terminal
// operation for an owner that is done with the message. Releasing an
// unpooled buffer just drops it. Release on an already-released Buf is
// a no-op, but any access is a panic.
func (b *Buf) Release() {
	if b == nil || b.released {
		return
	}
	b.released = true
	if b.class < 0 {
		b.store = nil
		return
	}
	bufsOutstanding.Add(-1)
	b.off, b.end = 0, 0
	bufPools[b.class].Put(b)
}

// CopyOut returns an exact-size copy of the message and releases the
// buffer — the bridge from the pooled data plane to the plain []byte
// Recv contract (caller owns the returned slice).
func (b *Buf) CopyOut() []byte {
	b.check()
	p := make([]byte, b.end-b.off)
	copy(p, b.store[b.off:b.end])
	b.Release()
	return p
}

// Detach removes the message bytes from pool management and returns
// them; the caller owns the slice indefinitely and the backing is left
// to the garbage collector. Use when the bytes must outlive any pooling
// discipline (e.g. a retransmission queue).
func (b *Buf) Detach() []byte {
	b.check()
	p := b.store[b.off:b.end:b.end]
	if b.class >= 0 {
		bufsOutstanding.Add(-1)
	}
	b.store = nil
	b.class = -1
	b.released = true
	return p
}
