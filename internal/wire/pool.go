package wire

// LocalPool is a single-owner buffer cache in front of the global
// size-class pools: a reactor shard gets its receive buffers from its
// own LocalPool so the steady-state acquisition path is a plain slice
// pop with no cross-shard synchronization, and returns buffers it never
// handed off (drops, short reads, shutdown) the same way. Buffers that
// do reach a consumer travel the normal ownership path and come back
// through Buf.Release into the global pool, from which the LocalPool
// refills when its cache runs dry.
//
// LocalPool is not safe for concurrent use; each shard owns exactly
// one.
type LocalPool struct {
	headroom, payload int
	free              []*Buf
}

// NewLocalPool returns a pool dispensing buffers shaped like
// NewBuf(headroom, payload), caching up to capacity of them locally.
func NewLocalPool(headroom, payload, capacity int) *LocalPool {
	if capacity < 0 {
		capacity = 0
	}
	return &LocalPool{
		headroom: headroom,
		payload:  payload,
		free:     make([]*Buf, 0, capacity),
	}
}

// Get returns an owned buffer with the pool's headroom and payload
// shape, preferring the local cache over the global size-class pools.
func (p *LocalPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.released = false
		b.ClearTrace()
		b.off = p.headroom
		b.end = p.headroom + p.payload
		bufsOutstanding.Add(1)
		return b
	}
	return NewBuf(p.headroom, p.payload)
}

// Put reclaims a buffer the owner never handed off. A buffer from a
// different size class — or one arriving when the cache is full —
// falls through to the global pool.
func (p *LocalPool) Put(b *Buf) {
	if b == nil || b.released {
		return
	}
	if b.class < 0 || len(b.store) < p.headroom+p.payload || len(p.free) == cap(p.free) {
		b.Release()
		return
	}
	b.released = true
	b.off, b.end = 0, 0
	bufsOutstanding.Add(-1)
	p.free = append(p.free, b)
}

// Drain moves every cached buffer back to the global pools (shard
// shutdown). Cached buffers already carry released-state bookkeeping,
// so this is a straight transfer.
func (p *LocalPool) Drain() {
	for i, b := range p.free {
		p.free[i] = nil
		bufPools[b.class].Put(b)
	}
	p.free = p.free[:0]
}
