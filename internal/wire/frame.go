// Stream framing: length-prefixed message frames over an io.ReadWriter.
//
// Datagram transports carry one message per datagram and do not need
// framing; stream transports (UNIX stream sockets, TCP used as a substrate)
// use FrameWriter/FrameReader to delimit messages.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MaxFrameLen bounds the size of a single frame.
const MaxFrameLen = 16 << 20 // 16 MiB

// FrameWriter writes length-prefixed frames to an io.Writer. It is safe for
// concurrent use.
type FrameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	hdr [4]byte
}

// NewFrameWriter returns a FrameWriter writing to w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame writes one frame containing p. It performs exactly two Write
// calls (header then payload) under a mutex so concurrent frames do not
// interleave.
func (fw *FrameWriter) WriteFrame(p []byte) error {
	if len(p) > MaxFrameLen {
		return fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, len(p))
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	binary.LittleEndian.PutUint32(fw.hdr[:], uint32(len(p)))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if len(p) == 0 {
		return nil
	}
	if _, err := fw.w.Write(p); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// FrameReader reads length-prefixed frames from an io.Reader. It is not
// safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
}

// NewFrameReader returns a FrameReader reading from r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// ReadFrame reads the next frame. The returned slice is owned by the
// FrameReader and is invalidated by the next call; copy it if it must
// outlive the call.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return nil, err // propagate io.EOF unwrapped for clean shutdown
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return fr.buf, nil
}
