package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.PutUvarint(0)
	e.PutUvarint(1)
	e.PutUvarint(math.MaxUint64)
	e.PutVarint(0)
	e.PutVarint(-1)
	e.PutVarint(math.MinInt64)
	e.PutVarint(math.MaxInt64)
	e.PutUint8(0xAB)
	e.PutBool(true)
	e.PutBool(false)
	e.PutUint16(0xBEEF)
	e.PutUint32(0xDEADBEEF)
	e.PutUint64(0x0102030405060708)
	e.PutFloat64(-3.25)
	e.PutBytes([]byte("hello"))
	e.PutString("world")
	e.PutBytes(nil)
	e.PutString("")

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint 0: got %d", got)
	}
	if got := d.Uvarint(); got != 1 {
		t.Errorf("uvarint 1: got %d", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint max: got %d", got)
	}
	if got := d.Varint(); got != 0 {
		t.Errorf("varint 0: got %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("varint -1: got %d", got)
	}
	if got := d.Varint(); got != math.MinInt64 {
		t.Errorf("varint min: got %d", got)
	}
	if got := d.Varint(); got != math.MaxInt64 {
		t.Errorf("varint max: got %d", got)
	}
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("uint8: got %#x", got)
	}
	if got := d.Bool(); !got {
		t.Error("bool true: got false")
	}
	if got := d.Bool(); got {
		t.Error("bool false: got true")
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Errorf("uint16: got %#x", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("uint32: got %#x", got)
	}
	if got := d.Uint64(); got != 0x0102030405060708 {
		t.Errorf("uint64: got %#x", got)
	}
	if got := d.Float64(); got != -3.25 {
		t.Errorf("float64: got %g", got)
	}
	if got := string(d.Bytes()); got != "hello" {
		t.Errorf("bytes: got %q", got)
	}
	if got := d.String(); got != "world" {
		t.Errorf("string: got %q", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("nil bytes: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: got %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	cases := map[string]func(d *Decoder){
		"uvarint":  func(d *Decoder) { d.Uvarint() },
		"varint":   func(d *Decoder) { d.Varint() },
		"uint8":    func(d *Decoder) { d.Uint8() },
		"uint16":   func(d *Decoder) { d.Uint16() },
		"uint32":   func(d *Decoder) { d.Uint32() },
		"uint64":   func(d *Decoder) { d.Uint64() },
		"float64":  func(d *Decoder) { d.Float64() },
		"bytes":    func(d *Decoder) { d.Bytes() },
		"raw":      func(d *Decoder) { d.Raw(1) },
		"rawNeg":   func(d *Decoder) { d.Raw(-1) },
		"len":      func(d *Decoder) { d.Len() },
		"valDecod": func(d *Decoder) { DecodeValue(d) },
	}
	for name, read := range cases {
		d := NewDecoder(nil)
		read(d)
		if d.Err() == nil {
			t.Errorf("%s on empty buffer: expected error", name)
		}
	}
}

func TestDecoderBytesLengthTooLarge(t *testing.T) {
	// Length prefix claims more than remains.
	e := NewEncoder(nil)
	e.PutUvarint(1000)
	d := NewDecoder(e.Bytes())
	if d.Bytes() != nil || d.Err() == nil {
		t.Error("expected error for truncated bytes")
	}
	// Length prefix exceeding MaxElementLen.
	e.Reset()
	e.PutUvarint(MaxElementLen + 1)
	d = NewDecoder(e.Bytes())
	d.Bytes()
	if !errors.Is(d.Err(), ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", d.Err())
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	d.Uint32() // fails: short
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.Uint8() // would succeed on a fresh decoder, must stay failed
	if d.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, d.Err())
	}
	if got := d.Uint8(); got != 0 {
		t.Errorf("read after error returned %d, want 0", got)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.Uint8()
	err := d.Finish()
	if !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("expected ErrTrailingBytes, got %v", err)
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow a uvarint.
	buf := bytes.Repeat([]byte{0xFF}, 11)
	d := NewDecoder(buf)
	d.Uvarint()
	if !errors.Is(d.Err(), ErrOverflow) {
		t.Errorf("expected ErrOverflow, got %v", d.Err())
	}
}

func TestBytesAliasingAndCopy(t *testing.T) {
	e := NewEncoder(nil)
	e.PutBytes([]byte{1, 2, 3})
	buf := append([]byte(nil), e.Bytes()...)

	d := NewDecoder(buf)
	alias := d.Bytes()
	buf[1] = 99 // mutate underlying storage: alias must observe it
	if alias[0] != 99 {
		t.Error("Bytes should alias the input buffer")
	}

	d = NewDecoder(append([]byte(nil), e.Bytes()...))
	cp := d.BytesCopy()
	cp[0] = 42
	d2 := NewDecoder(e.Bytes())
	if got := d2.Bytes(); got[0] != 1 {
		t.Error("BytesCopy must not share storage with the encoder buffer")
	}
}

func TestEncoderReuse(t *testing.T) {
	e := NewEncoder(nil)
	e.PutString("first")
	buf := e.Bytes()
	e2 := NewEncoder(buf)
	e2.PutString("second")
	d := NewDecoder(e2.Bytes())
	if got := d.String(); got != "second" {
		t.Errorf("reused encoder: got %q", got)
	}
}

func TestQuickUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.PutUvarint(v)
		d := NewDecoder(e.Bytes())
		return d.Uvarint() == v && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.PutVarint(v)
		d := NewDecoder(e.Bytes())
		return d.Varint() == v && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		e := NewEncoder(nil)
		e.PutBytes(b)
		d := NewDecoder(e.Bytes())
		got := d.Bytes()
		return bytes.Equal(got, b) && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMixedSequenceRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, c string, dd []byte, ok bool, fl float64) bool {
		e := NewEncoder(nil)
		e.PutUvarint(a)
		e.PutVarint(b)
		e.PutString(c)
		e.PutBytes(dd)
		e.PutBool(ok)
		e.PutFloat64(fl)
		d := NewDecoder(e.Bytes())
		ga := d.Uvarint()
		gb := d.Varint()
		gc := d.String()
		gd := d.Bytes()
		gok := d.Bool()
		gfl := d.Float64()
		if d.Finish() != nil {
			return false
		}
		if math.IsNaN(fl) {
			if !math.IsNaN(gfl) {
				return false
			}
		} else if gfl != fl {
			return false
		}
		return ga == a && gb == b && gc == c && bytes.Equal(gd, dd) && gok == ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Fuzz-style robustness: random byte strings must never panic the decoder.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(buf []byte) bool {
		d := NewDecoder(buf)
		for d.Err() == nil && d.Remaining() > 0 {
			DecodeValue(d)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	msgs := [][]byte{[]byte("alpha"), {}, []byte("gamma with more bytes")}
	for _, m := range msgs {
		if err := fw.WriteFrame(m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range msgs {
		got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	if err := fw.WriteFrame(make([]byte, MaxFrameLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
	// A hostile header claiming a huge frame must be rejected by the reader.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	fr := NewFrameReader(&buf)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame([]byte("full message")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	fr := NewFrameReader(bytes.NewReader(trunc))
	if _, err := fr.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestFrameReaderBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteFrame([]byte("first"))
	fw.WriteFrame([]byte("second"))
	fr := NewFrameReader(&buf)
	a, _ := fr.ReadFrame()
	saved := string(a) // copy before next read
	b, _ := fr.ReadFrame()
	if saved != "first" || string(b) != "second" {
		t.Errorf("got %q then %q", saved, b)
	}
}
