// Package wire implements the compact binary codec used by Bertha for
// negotiation messages, discovery messages, and the serialization chunnel.
//
// The encoding is little-endian with unsigned varints for lengths and
// zig-zag varints for signed integers, similar in spirit to the bincode
// format used by the paper's Rust prototype. It is deliberately simple:
// fixed-width for floats, varint for integers, length-prefixed for strings,
// byte slices, and collections.
//
// Encoder and Decoder are allocation-conscious: an Encoder appends into a
// caller-reusable buffer and a Decoder reads from a caller-provided slice
// without copying (ReadBytes aliases the input; use ReadBytesCopy when the
// input buffer will be reused).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	// ErrShortBuffer indicates the decoder ran out of input mid-value.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrOverflow indicates a varint did not terminate within 10 bytes or
	// exceeded the target type's range.
	ErrOverflow = errors.New("wire: varint overflow")
	// ErrTooLarge indicates a length prefix exceeded the decoder's limit.
	ErrTooLarge = errors.New("wire: length exceeds limit")
	// ErrTrailingBytes is returned by Decoder.Finish when input remains.
	ErrTrailingBytes = errors.New("wire: trailing bytes")
)

// MaxElementLen bounds any single length-prefixed element (string, byte
// slice, or collection count) a Decoder will accept. It protects against
// hostile length prefixes causing huge allocations.
const MaxElementLen = 64 << 20 // 64 MiB

// Encoder appends values to a byte buffer. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
// Passing a previously returned Bytes() slice allows buffer reuse.
func NewEncoder(buf []byte) *Encoder {
	return &Encoder{buf: buf[:0]}
}

// Bytes returns the encoded buffer. The slice is owned by the Encoder and
// is invalidated by the next Put call or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded contents, retaining the buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUvarint appends an unsigned varint.
func (e *Encoder) PutUvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// PutVarint appends a zig-zag-encoded signed varint.
func (e *Encoder) PutVarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutUint8 appends a single byte.
func (e *Encoder) PutUint8(v uint8) { e.buf = append(e.buf, v) }

// PutBool appends a boolean as one byte (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// PutUint16 appends a fixed-width little-endian uint16.
func (e *Encoder) PutUint16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// PutUint32 appends a fixed-width little-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// PutUint64 appends a fixed-width little-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// PutFloat64 appends an IEEE-754 double in little-endian byte order.
func (e *Encoder) PutFloat64(v float64) {
	e.PutUint64(math.Float64bits(v))
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutRaw appends b with no length prefix. The decoder must know the length
// out of band.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutLen appends a collection length prefix.
func (e *Encoder) PutLen(n int) { e.PutUvarint(uint64(n)) }

// Decoder reads values sequentially from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder reading from buf. The Decoder does not copy
// buf; the caller must not mutate it while decoding.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first error encountered, if any. Once an error occurs all
// subsequent reads return zero values, so callers may check Err once after
// a batch of reads.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or if unread bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Fail marks the decoder failed with err (if it has not already failed).
// Callers layering higher-level decoding on a Decoder use this to surface
// structural errors through the same sticky-error channel.
func (d *Decoder) Fail(err error) { d.fail(err) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrShortBuffer)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads one byte as a boolean. Any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 reads a fixed-width little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 2 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// Uint32 reads a fixed-width little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 {
	return math.Float64frombits(d.Uint64())
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases the
// Decoder's input buffer; use BytesCopy if the input will be reused.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxElementLen {
		d.fail(ErrTooLarge)
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	v := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// BytesCopy reads a length-prefixed byte slice into fresh storage.
func (d *Decoder) BytesCopy() []byte {
	v := d.Bytes()
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.Bytes())
}

// Raw reads exactly n bytes with no length prefix, aliasing the input.
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	v := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

// Len reads a collection length prefix, bounds-checked against both
// MaxElementLen and the remaining input (each element needs ≥1 byte).
func (d *Decoder) Len() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > MaxElementLen || n > uint64(d.Remaining()) {
		d.fail(ErrTooLarge)
		return 0
	}
	return int(n)
}
