// Tagged value union used for chunnel arguments and discovery metadata.
//
// Chunnel arguments must cross the wire during negotiation (the runtime
// "forwards any arguments provided for a Chunnel type to the selected
// implementation", §3.1), so they are restricted to a small set of
// serializable shapes. Opaque Go values (e.g. arbitrary closures) cannot be
// negotiated to a remote or offloaded implementation; chunnels that accept
// them must declare host-fallback-only behaviour for such arguments.
package wire

import (
	"fmt"
	"sort"
)

// Kind tags a Value's dynamic type.
type Kind uint8

// Value kinds.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindUint
	KindFloat
	KindString
	KindBytes
	KindList
	KindMap
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindUint:
		return "uint"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a serializable tagged union. The zero Value is the nil value.
type Value struct {
	kind Kind
	b    bool
	i    int64
	u    uint64
	f    float64
	s    string
	bs   []byte
	list []Value
	m    map[string]Value
}

// Constructors.

// Nil returns the nil Value.
func Nil() Value { return Value{} }

// Bool wraps a boolean.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int wraps a signed integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Uint wraps an unsigned integer.
func Uint(v uint64) Value { return Value{kind: KindUint, u: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str wraps a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// BytesVal wraps a byte slice. The Value aliases v.
func BytesVal(v []byte) Value { return Value{kind: KindBytes, bs: v} }

// List wraps a list of Values. The Value aliases vs.
func List(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// Map wraps a string-keyed map of Values. The Value aliases m.
func Map(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// Accessors. Each returns the wrapped value and whether the kind matched.

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean, or false if the kind differs.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// AsInt returns the signed integer. A KindUint value in int64 range also
// converts.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindUint:
		if v.u <= 1<<63-1 {
			return int64(v.u), true
		}
	}
	return 0, false
}

// AsUint returns the unsigned integer. A non-negative KindInt also converts.
func (v Value) AsUint() (uint64, bool) {
	switch v.kind {
	case KindUint:
		return v.u, true
	case KindInt:
		if v.i >= 0 {
			return uint64(v.i), true
		}
	}
	return 0, false
}

// AsFloat returns the float64, or 0 if the kind differs.
func (v Value) AsFloat() (float64, bool) { return v.f, v.kind == KindFloat }

// AsString returns the string, or "" if the kind differs.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns the byte slice, or nil if the kind differs.
func (v Value) AsBytes() ([]byte, bool) { return v.bs, v.kind == KindBytes }

// AsList returns the element slice, or nil if the kind differs.
func (v Value) AsList() ([]Value, bool) { return v.list, v.kind == KindList }

// AsMap returns the map, or nil if the kind differs.
func (v Value) AsMap() (map[string]Value, bool) { return v.m, v.kind == KindMap }

// Equal reports deep equality of two Values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindUint:
		return v.u == o.u
	case KindFloat:
		return v.f == o.f // NaN != NaN, matching float semantics
	case KindString:
		return v.s == o.s
	case KindBytes:
		return string(v.bs) == string(o.bs)
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.m) != len(o.m) {
			return false
		}
		for k, a := range v.m {
			b, ok := o.m[k]
			if !ok || !a.Equal(b) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindBool:
		return fmt.Sprintf("%t", v.b)
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindUint:
		return fmt.Sprintf("%du", v.u)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.bs)
	case KindList:
		s := "["
		for i, e := range v.list {
			if i > 0 {
				s += ", "
			}
			s += e.String()
		}
		return s + "]"
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := "{"
		for i, k := range keys {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%s: %s", k, v.m[k])
		}
		return s + "}"
	}
	return "?"
}

// maxValueDepth bounds nesting when decoding to prevent stack exhaustion
// from hostile input.
const maxValueDepth = 32

// Encode appends the value to the encoder.
func (v Value) Encode(e *Encoder) {
	e.PutUint8(uint8(v.kind))
	switch v.kind {
	case KindNil:
	case KindBool:
		e.PutBool(v.b)
	case KindInt:
		e.PutVarint(v.i)
	case KindUint:
		e.PutUvarint(v.u)
	case KindFloat:
		e.PutFloat64(v.f)
	case KindString:
		e.PutString(v.s)
	case KindBytes:
		e.PutBytes(v.bs)
	case KindList:
		e.PutLen(len(v.list))
		for _, el := range v.list {
			el.Encode(e)
		}
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // canonical order: negotiation hashes encodings
		e.PutLen(len(keys))
		for _, k := range keys {
			e.PutString(k)
			v.m[k].Encode(e)
		}
	}
}

// DecodeValue reads one Value from the decoder.
func DecodeValue(d *Decoder) Value {
	return decodeValue(d, 0)
}

func decodeValue(d *Decoder, depth int) Value {
	if depth > maxValueDepth {
		d.fail(fmt.Errorf("%w: value nesting exceeds %d", ErrTooLarge, maxValueDepth))
		return Value{}
	}
	k := Kind(d.Uint8())
	if d.err != nil {
		return Value{}
	}
	switch k {
	case KindNil:
		return Nil()
	case KindBool:
		return Bool(d.Bool())
	case KindInt:
		return Int(d.Varint())
	case KindUint:
		return Uint(d.Uvarint())
	case KindFloat:
		return Float(d.Float64())
	case KindString:
		return Str(string(d.Bytes()))
	case KindBytes:
		return BytesVal(d.BytesCopy())
	case KindList:
		n := d.Len()
		if d.err != nil {
			return Value{}
		}
		vs := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			vs = append(vs, decodeValue(d, depth+1))
			if d.err != nil {
				return Value{}
			}
		}
		return List(vs...)
	case KindMap:
		n := d.Len()
		if d.err != nil {
			return Value{}
		}
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			key := string(d.Bytes())
			m[key] = decodeValue(d, depth+1)
			if d.err != nil {
				return Value{}
			}
		}
		return Map(m)
	default:
		d.fail(fmt.Errorf("wire: unknown value kind %d", k))
		return Value{}
	}
}
