package discovery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// opCounters are the served-operation counters, registered in the
// process registry under "discovery/<op>" and incremented per request
// the server handles (including ones that fail with a status error).
type opCounters struct {
	register, withdraw, query, claim, release, malformed *telemetry.Counter
}

func newOpCounters() *opCounters {
	reg := telemetry.Default()
	return &opCounters{
		register:  reg.Counter("discovery/register"),
		withdraw:  reg.Counter("discovery/withdraw"),
		query:     reg.Counter("discovery/query"),
		claim:     reg.Counter("discovery/claim"),
		release:   reg.Counter("discovery/release"),
		malformed: reg.Counter("discovery/malformed"),
	}
}

// Wire protocol: every request is one datagram
//
//	reqID uint64 | op uint8 | payload
//
// answered by exactly one response datagram
//
//	reqID uint64 | status uint8 | payload
//
// Requests are idempotent (register/withdraw/query/release) or carry
// client-salted claim semantics, so clients retransmit on timeout.

// Operation codes.
const (
	opRegister uint8 = iota + 1
	opWithdraw
	opQuery
	opClaim
	opRelease
)

// Response status codes.
const (
	statusOK uint8 = iota
	statusErr
)

// requestTimeout is the client's per-attempt response wait.
const requestTimeout = 500 * time.Millisecond

// requestRetries bounds client retransmissions.
const requestRetries = 6

// Server serves a Service over a core.Listener.
type Server struct {
	svc *Service
	l   core.Listener
	ops *opCounters

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// Serve starts serving svc on l and returns immediately; use Close to
// stop.
func Serve(svc *Service, l core.Listener) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{svc: svc, l: l, ops: newOpCounters(), cancel: cancel}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept(ctx)
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(ctx, conn)
		}()
	}
}

func (s *Server) serveConn(ctx context.Context, conn core.Conn) {
	for {
		req, err := conn.Recv(ctx)
		if err != nil {
			return
		}
		resp := s.handle(ctx, req)
		if resp != nil {
			if err := conn.Send(ctx, resp); err != nil {
				return
			}
		}
	}
}

// handle processes one request datagram and returns the response (nil for
// malformed requests, which are dropped).
func (s *Server) handle(ctx context.Context, req []byte) []byte {
	d := wire.NewDecoder(req)
	reqID := d.Uint64()
	op := d.Uint8()
	if d.Err() != nil {
		s.ops.malformed.Inc()
		return nil
	}
	switch op {
	case opRegister:
		s.ops.register.Inc()
	case opWithdraw:
		s.ops.withdraw.Inc()
	case opQuery:
		s.ops.query.Inc()
	case opClaim:
		s.ops.claim.Inc()
	case opRelease:
		s.ops.release.Inc()
	default:
		s.ops.malformed.Inc()
	}
	e := wire.NewEncoder(nil)
	e.PutUint64(reqID)

	fail := func(err error) []byte {
		e.PutUint8(statusErr)
		e.PutString(err.Error())
		return e.Bytes()
	}

	switch op {
	case opRegister:
		offer := core.DecodeOffer(d)
		capacity := int(d.Varint())
		ttl := time.Duration(d.Varint())
		if err := d.Finish(); err != nil {
			return nil
		}
		if err := s.svc.Register(offer, capacity, ttl); err != nil {
			return fail(err)
		}
		e.PutUint8(statusOK)
	case opWithdraw:
		name := d.String()
		if err := d.Finish(); err != nil {
			return nil
		}
		s.svc.Withdraw(name)
		e.PutUint8(statusOK)
	case opQuery:
		n := d.Len()
		if d.Err() != nil {
			return nil
		}
		types := make([]string, 0, n)
		for i := 0; i < n; i++ {
			types = append(types, d.String())
		}
		if err := d.Finish(); err != nil {
			return nil
		}
		offers, err := s.svc.Query(ctx, types)
		if err != nil {
			return fail(err)
		}
		e.PutUint8(statusOK)
		core.EncodeOffers(e, offers)
	case opClaim:
		name := d.String()
		res := core.DecodeResources(d)
		if err := d.Finish(); err != nil {
			return nil
		}
		id, err := s.svc.Claim(ctx, name, res)
		if err != nil {
			return fail(err)
		}
		e.PutUint8(statusOK)
		e.PutUint64(id)
	case opRelease:
		id := d.Uint64()
		if err := d.Finish(); err != nil {
			return nil
		}
		if err := s.svc.Release(ctx, id); err != nil {
			return fail(err)
		}
		e.PutUint8(statusOK)
	default:
		return fail(fmt.Errorf("discovery: unknown op %d", op))
	}
	return e.Bytes()
}

// Client speaks the discovery wire protocol over a core.Conn. It
// implements core.DiscoveryClient and adds Register/Withdraw for offload
// developers and operators.
//
// A Client serializes requests (one outstanding at a time) and
// retransmits on timeout; the underlying transport may be lossy.
// Serialization uses a semaphore channel rather than a mutex so a
// caller waiting its turn still honors context cancellation, and no
// lock is held across the blocking Send/Recv round trip.
type Client struct {
	sem    chan struct{} // capacity 1: one request in flight
	conn   core.Conn
	nextID atomic.Uint64
}

// NewClient returns a Client using conn.
func NewClient(conn core.Conn) *Client {
	return &Client{sem: make(chan struct{}, 1), conn: conn}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and awaits its response, retrying on
// timeout.
func (c *Client) roundTrip(ctx context.Context, build func(e *wire.Encoder)) (*wire.Decoder, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	reqID := c.nextID.Add(1)
	e := wire.NewEncoder(nil)
	e.PutUint64(reqID)
	build(e)
	req := append([]byte(nil), e.Bytes()...)

	for attempt := 0; attempt < requestRetries; attempt++ {
		if err := c.conn.Send(ctx, req); err != nil {
			return nil, fmt.Errorf("discovery: send: %w", err)
		}
		actx, cancel := context.WithTimeout(ctx, requestTimeout)
		resp, err := c.conn.Recv(actx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				continue
			}
			return nil, fmt.Errorf("discovery: recv: %w", err)
		}
		d := wire.NewDecoder(resp)
		if d.Uint64() != reqID {
			continue // response to an earlier retransmission
		}
		switch d.Uint8() {
		case statusOK:
			return d, nil
		case statusErr:
			return nil, fmt.Errorf("discovery: %s", d.String())
		default:
			return nil, fmt.Errorf("discovery: malformed response")
		}
	}
	return nil, fmt.Errorf("discovery: no response after %d attempts", requestRetries)
}

// Register advertises an implementation (see Service.Register).
func (c *Client) Register(ctx context.Context, offer core.ImplOffer, capacity int, ttl time.Duration) error {
	_, err := c.roundTrip(ctx, func(e *wire.Encoder) {
		e.PutUint8(opRegister)
		offer.Encode(e)
		e.PutVarint(int64(capacity))
		e.PutVarint(int64(ttl))
	})
	return err
}

// Withdraw removes an advertisement.
func (c *Client) Withdraw(ctx context.Context, name string) error {
	_, err := c.roundTrip(ctx, func(e *wire.Encoder) {
		e.PutUint8(opWithdraw)
		e.PutString(name)
	})
	return err
}

// Query implements core.DiscoveryClient.
func (c *Client) Query(ctx context.Context, types []string) ([]core.ImplOffer, error) {
	d, err := c.roundTrip(ctx, func(e *wire.Encoder) {
		e.PutUint8(opQuery)
		e.PutLen(len(types))
		for _, t := range types {
			e.PutString(t)
		}
	})
	if err != nil {
		return nil, err
	}
	offers := core.DecodeOffers(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("discovery: malformed query response: %w", err)
	}
	return offers, nil
}

// Claim implements core.DiscoveryClient.
func (c *Client) Claim(ctx context.Context, implName string, res core.Resources) (uint64, error) {
	d, err := c.roundTrip(ctx, func(e *wire.Encoder) {
		e.PutUint8(opClaim)
		e.PutString(implName)
		res.Encode(e)
	})
	if err != nil {
		return 0, err
	}
	id := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("discovery: malformed claim response: %w", err)
	}
	return id, nil
}

// Release implements core.DiscoveryClient.
func (c *Client) Release(ctx context.Context, claimID uint64) error {
	_, err := c.roundTrip(ctx, func(e *wire.Encoder) {
		e.PutUint8(opRelease)
		e.PutUint64(claimID)
	})
	return err
}

var _ core.DiscoveryClient = (*Client)(nil)
