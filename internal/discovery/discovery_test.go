package discovery

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func offer(name, typ string, prio int) core.ImplOffer {
	return core.ImplOffer{Name: name, Type: typ, Priority: prio,
		Location: core.LocKernel, Endpoint: spec.EndpointServer}
}

func TestServiceRegisterQueryWithdraw(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	if err := s.Register(offer("shard/xdp", "shard", 20), 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(offer("mcast/switch", "mcast", 30), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(core.ImplOffer{}, 0, 0); err == nil {
		t.Error("empty offer should be rejected")
	}

	got, err := s.Query(ctx, []string{"shard"})
	if err != nil || len(got) != 1 || got[0].Name != "shard/xdp" {
		t.Errorf("typed query: %v %v", got, err)
	}
	all, _ := s.Query(ctx, nil)
	if len(all) != 2 {
		t.Errorf("all query: %v", all)
	}
	if all[0].Name > all[1].Name {
		t.Error("query results must be sorted")
	}

	s.Withdraw("shard/xdp")
	got, _ = s.Query(ctx, []string{"shard"})
	if len(got) != 0 {
		t.Errorf("after withdraw: %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("len: %d", s.Len())
	}
}

func TestServiceTTLExpiry(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.Register(offer("a/x", "a", 1), 0, time.Minute)

	got, _ := s.Query(ctx, nil)
	if len(got) != 1 {
		t.Fatalf("pre-expiry: %v", got)
	}
	now = now.Add(2 * time.Minute)
	got, _ = s.Query(ctx, nil)
	if len(got) != 0 {
		t.Errorf("post-expiry: %v", got)
	}
	// Claims against expired advertisements fail.
	s.Register(offer("b/x", "b", 1), 1, time.Minute)
	now = now.Add(5 * time.Minute)
	if _, err := s.Claim(ctx, "b/x", core.Resources{}); err == nil {
		t.Error("claim on expired registration should fail")
	}
	// Re-registering refreshes.
	s.Register(offer("b/x", "b", 1), 1, time.Minute)
	if _, err := s.Claim(ctx, "b/x", core.Resources{}); err != nil {
		t.Errorf("claim after refresh: %v", err)
	}
}

func TestServiceClaimAccounting(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	s.Register(offer("sw/p4", "shard", 30), 2, 0)

	id1, err := s.Claim(ctx, "sw/p4", core.Resources{TableEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Claim(ctx, "sw/p4", core.Resources{TableEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("claim ids must be distinct")
	}
	if _, err := s.Claim(ctx, "sw/p4", core.Resources{}); err == nil {
		t.Error("third claim should exceed capacity 2")
	}
	if s.InUse("sw/p4") != 2 {
		t.Errorf("in use: %d", s.InUse("sw/p4"))
	}
	s.Release(ctx, id1)
	if s.InUse("sw/p4") != 1 {
		t.Errorf("in use after release: %d", s.InUse("sw/p4"))
	}
	if _, err := s.Claim(ctx, "sw/p4", core.Resources{}); err != nil {
		t.Errorf("claim after release: %v", err)
	}
	// Double release is a no-op.
	if err := s.Release(ctx, id1); err != nil {
		t.Errorf("double release: %v", err)
	}
	// Unknown impl.
	if _, err := s.Claim(ctx, "missing", core.Resources{}); err == nil {
		t.Error("claim on unregistered impl should fail")
	}
	// Advertisement-only (capacity 0): unlimited claims.
	s.Register(offer("free/x", "y", 1), 0, 0)
	for i := 0; i < 10; i++ {
		if _, err := s.Claim(ctx, "free/x", core.Resources{}); err != nil {
			t.Fatalf("advertisement-only claim %d: %v", i, err)
		}
	}
}

func TestServiceRegisterPreservesClaims(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	s.Register(offer("sw/p4", "shard", 30), 2, 0)
	s.Claim(ctx, "sw/p4", core.Resources{})
	// Refresh with larger capacity keeps the outstanding claim counted.
	s.Register(offer("sw/p4", "shard", 30), 3, 0)
	if s.InUse("sw/p4") != 1 {
		t.Errorf("in use after refresh: %d", s.InUse("sw/p4"))
	}
}

// startServer runs a discovery server over an in-process pipe network and
// returns a connected client.
func startServer(t *testing.T, svc *Service) *Client {
	t.Helper()
	pn := transport.NewPipeNetwork()
	l, err := pn.Listen("dhost", "discovery")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, l)
	t.Cleanup(func() { srv.Close() })
	conn, err := pn.Dial(context.Background(), core.Addr{Net: "pipe", Addr: "discovery"})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	ctx := ctxT(t)
	svc := NewService()
	c := startServer(t, svc)

	if err := c.Register(ctx, offer("shard/xdp", "shard", 20), 2, time.Minute); err != nil {
		t.Fatal(err)
	}
	offers, err := c.Query(ctx, []string{"shard"})
	if err != nil || len(offers) != 1 || offers[0].Name != "shard/xdp" {
		t.Fatalf("query: %v %v", offers, err)
	}
	id, err := c.Claim(ctx, "shard/xdp", core.Resources{TableEntries: 4})
	if err != nil || id == 0 {
		t.Fatalf("claim: %d %v", id, err)
	}
	if err := c.Release(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := c.Withdraw(ctx, "shard/xdp"); err != nil {
		t.Fatal(err)
	}
	offers, _ = c.Query(ctx, []string{"shard"})
	if len(offers) != 0 {
		t.Errorf("after withdraw: %v", offers)
	}
	// Error propagation: claiming a withdrawn impl.
	if _, err := c.Claim(ctx, "shard/xdp", core.Resources{}); err == nil {
		t.Error("claim error should propagate to client")
	}
}

func TestClientSurvivesLossyTransport(t *testing.T) {
	ctx := ctxT(t)
	svc := NewService()
	pn := transport.NewPipeNetwork()
	l, _ := pn.Listen("dhost", "disc")
	srv := Serve(svc, l)
	t.Cleanup(func() { srv.Close() })

	raw, err := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "disc"})
	if err != nil {
		t.Fatal(err)
	}
	// 40% request loss: the client must retransmit.
	c := NewClient(transport.Lossy(raw, transport.LossConfig{Seed: 5, DropProb: 0.4}))
	t.Cleanup(func() { c.Close() })

	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("impl%d/x", i)
		if err := c.Register(ctx, offer(name, "t", i), 1, time.Minute); err != nil {
			t.Fatalf("register %d over lossy link: %v", i, err)
		}
	}
	offers, err := c.Query(ctx, []string{"t"})
	if err != nil || len(offers) != 10 {
		t.Fatalf("query over lossy link: %d offers, %v", len(offers), err)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctx := ctxT(t)
	svc := NewService()
	svc.Register(offer("sw/p4", "shard", 30), 50, 0)

	pn := transport.NewPipeNetwork()
	l, _ := pn.Listen("dhost", "disc")
	srv := Serve(svc, l)
	t.Cleanup(func() { srv.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "disc"})
			if err != nil {
				errs <- err
				return
			}
			c := NewClient(conn)
			defer c.Close()
			for i := 0; i < 20; i++ {
				id, err := c.Claim(ctx, "sw/p4", core.Resources{})
				if err != nil {
					errs <- fmt.Errorf("claim: %w", err)
					return
				}
				if err := c.Release(ctx, id); err != nil {
					errs <- fmt.Errorf("release: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if svc.InUse("sw/p4") != 0 {
		t.Errorf("leaked claims: %d", svc.InUse("sw/p4"))
	}
}

// TestRuntimeUsesRemoteDiscovery wires a real discovery server into a
// full negotiation: the runtime's query goes over the wire.
func TestRuntimeUsesRemoteDiscovery(t *testing.T) {
	ctx := ctxT(t)
	svc := NewService()
	c := startServer(t, svc)

	regS := core.NewRegistry()
	fb := &recordImpl{info: core.ImplInfo{Name: "steer/fb", Type: "steer",
		Location: core.LocUserspace, Endpoint: spec.EndpointServer}}
	accel := &recordImpl{info: core.ImplInfo{Name: "steer/xdp", Type: "steer", Priority: 20,
		Location: core.LocKernel, Endpoint: spec.EndpointServer, DiscoveryOnly: true}}
	regS.MustRegister(fb)
	regS.MustRegister(accel)
	svc.Register(core.OfferFromInfo(accel.info), 0, time.Minute)

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("steer")),
		core.WithRegistry(regS), core.WithDiscovery(c))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(core.NewRegistry()))

	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("srvhost", "svc")
	nl, _ := srv.Listen(ctx, base)
	go func() {
		conn, err := nl.Accept(ctx)
		if err == nil {
			go func() {
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					conn.Send(ctx, m)
				}
			}()
		}
	}()
	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	conn, err := cli.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send(ctx, []byte("ping"))
	if m, err := conn.Recv(ctx); err != nil || string(m) != "ping" {
		t.Fatalf("echo: %q %v", m, err)
	}
	if accel.wraps != 1 {
		t.Errorf("remote-discovered impl not used: fb=%d accel=%d", fb.wraps, accel.wraps)
	}
}

type recordImpl struct {
	info  core.ImplInfo
	wraps int
}

func (r *recordImpl) Info() core.ImplInfo { return r.info }
func (r *recordImpl) Init(ctx context.Context, env *core.Env, args []wire.Value) error {
	return nil
}
func (r *recordImpl) Teardown(ctx context.Context, env *core.Env) error { return nil }
func (r *recordImpl) Wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	r.wraps++
	return conn, nil
}

// TestUDPServedDiscovery runs the daemon configuration of
// cmd/bertha-discovery — server and client over real UDP sockets.
func TestUDPServedDiscovery(t *testing.T) {
	ctx := ctxT(t)
	svc := NewService()
	l, err := transport.ListenUDP("", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, l)
	t.Cleanup(func() { srv.Close() })

	conn, err := transport.DialUDP("", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })

	if err := c.Register(ctx, offer("shard/xdp", "shard", 20), 1, time.Minute); err != nil {
		t.Fatal(err)
	}
	offers, err := c.Query(ctx, []string{"shard"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("query over UDP: %v %v", offers, err)
	}
	id, err := c.Claim(ctx, "shard/xdp", core.Resources{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Claim(ctx, "shard/xdp", core.Resources{}); err == nil {
		t.Error("capacity 1 should reject the second claim")
	}
	if err := c.Release(ctx, id); err != nil {
		t.Fatal(err)
	}
}
