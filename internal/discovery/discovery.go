// Package discovery implements the Bertha discovery service (§4.2): the
// registry where offload developers, network operators, and system
// administrators register accelerated chunnel implementations, and which
// the Bertha runtime queries during connection negotiation.
//
// The service tracks, per implementation: its advertisement (an
// core.ImplOffer), the capacity available for resource claims (e.g. switch
// table space), and a registration TTL so crashed offloads age out.
//
// The package provides three views of one Service:
//
//   - Service: the in-memory store with Register/Withdraw/Query/Claim.
//   - Server: serves the store over any core.Listener using the wire
//     protocol (cmd/bertha-discovery runs one over UDP).
//   - Client: a core.DiscoveryClient speaking the wire protocol to a
//     remote Server. Service itself also implements core.DiscoveryClient
//     for in-process use.
package discovery

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
)

// DefaultTTL is the advertisement lifetime when the registrant does not
// specify one. Registrants refresh by re-registering.
const DefaultTTL = 5 * time.Minute

// Registration is one advertised implementation with its remaining
// capacity.
type Registration struct {
	Offer core.ImplOffer
	// Capacity is how many concurrent claims of Offer.Resources the
	// implementation can serve. Zero means the implementation is
	// advertisement-only (no resource accounting, claims always succeed)
	// unless a resource Pool is attached with SetPool.
	Capacity int
	// Expires is when the advertisement lapses.
	Expires time.Time

	inUse int
	pool  *Pool
}

// Pool is a multi-dimensional resource pool backing one or more
// advertised implementations — e.g. a switch's match-action table space
// and port bandwidth shared by every chunnel offloaded to it. Claims
// consume the claiming implementation's declared core.Resources from
// the pool; when any dimension is exhausted, negotiation falls back to
// the next candidate (§6 "if two programs can benefit from offloading
// functionality to a P4 switch, but the switch only has capacity for
// one, the Bertha runtime must choose").
type Pool struct {
	// TableEntries and Bandwidth are the pool's total capacities in the
	// same abstract units as core.Resources.
	TableEntries uint32
	Bandwidth    uint32

	usedTable uint32
	usedBW    uint32
}

// available reports whether the pool can admit the request.
func (p *Pool) available(res core.Resources) bool {
	return p.usedTable+res.TableEntries <= p.TableEntries &&
		p.usedBW+res.Bandwidth <= p.Bandwidth
}

func (p *Pool) take(res core.Resources) {
	p.usedTable += res.TableEntries
	p.usedBW += res.Bandwidth
}

func (p *Pool) release(res core.Resources) {
	if res.TableEntries <= p.usedTable {
		p.usedTable -= res.TableEntries
	} else {
		p.usedTable = 0
	}
	if res.Bandwidth <= p.usedBW {
		p.usedBW -= res.Bandwidth
	} else {
		p.usedBW = 0
	}
}

// Used returns the pool's current consumption.
func (p *Pool) Used() (tableEntries, bandwidth uint32) {
	return p.usedTable, p.usedBW
}

// Service is the in-memory discovery store. It is safe for concurrent use
// and implements core.DiscoveryClient for in-process callers.
type Service struct {
	mu     sync.Mutex
	regs   map[string]*Registration // by impl name
	claims map[uint64]claimRecord   // claim id -> what it consumed
	nextID uint64
	now    func() time.Time
}

type claimRecord struct {
	implName string
	res      core.Resources
	pool     *Pool
}

// NewService returns an empty discovery service.
func NewService() *Service {
	return &Service{
		regs:   make(map[string]*Registration),
		claims: make(map[uint64]claimRecord),
		now:    time.Now,
	}
}

// SetPool attaches a shared multi-dimensional resource pool to an
// advertised implementation. Several implementations may share one pool
// (the §6 scenario: multiple chunnels competing for one switch).
func (s *Service) SetPool(implName string, pool *Pool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regs[implName]
	if !ok {
		return fmt.Errorf("discovery: %q is not registered", implName)
	}
	r.pool = pool
	return nil
}

// Register advertises an implementation with the given claim capacity and
// TTL (DefaultTTL when ttl <= 0). Re-registering an existing name
// refreshes the advertisement and updates capacity, preserving
// outstanding claims.
func (s *Service) Register(offer core.ImplOffer, capacity int, ttl time.Duration) error {
	if offer.Name == "" || offer.Type == "" {
		return fmt.Errorf("discovery: offer missing name or type")
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inUse := 0
	var pool *Pool
	if prev, ok := s.regs[offer.Name]; ok {
		inUse = prev.inUse
		pool = prev.pool
	}
	s.regs[offer.Name] = &Registration{
		Offer:    offer,
		Capacity: capacity,
		Expires:  s.now().Add(ttl),
		inUse:    inUse,
		pool:     pool,
	}
	return nil
}

// Withdraw removes an advertisement. Outstanding claims remain valid
// until released (connections using the offload keep working; new
// connections no longer see it).
func (s *Service) Withdraw(name string) {
	s.mu.Lock()
	delete(s.regs, name)
	s.mu.Unlock()
}

// Query implements core.DiscoveryClient: it returns live advertisements
// for the given chunnel types (all types when types is empty), sorted by
// name for determinism.
func (s *Service) Query(ctx context.Context, types []string) ([]core.ImplOffer, error) {
	want := map[string]bool{}
	for _, t := range types {
		want[t] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var out []core.ImplOffer
	for name, r := range s.regs {
		if now.After(r.Expires) {
			delete(s.regs, name)
			continue
		}
		if len(want) > 0 && !want[r.Offer.Type] {
			continue
		}
		out = append(out, r.Offer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Claim implements core.DiscoveryClient: it reserves one capacity unit of
// the named implementation. Claims against advertisement-only
// registrations (capacity 0 at registration) always succeed without
// accounting.
func (s *Service) Claim(ctx context.Context, implName string, res core.Resources) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regs[implName]
	if !ok {
		return 0, fmt.Errorf("discovery: %q is not registered", implName)
	}
	if s.now().After(r.Expires) {
		delete(s.regs, implName)
		return 0, fmt.Errorf("discovery: %q advertisement expired", implName)
	}
	if r.Capacity > 0 && r.inUse >= r.Capacity {
		return 0, fmt.Errorf("discovery: %q at capacity (%d in use)", implName, r.inUse)
	}
	if r.pool != nil && !r.pool.available(res) {
		t, bw := r.pool.Used()
		return 0, fmt.Errorf("discovery: %q resource pool exhausted (table %d/%d, bw %d/%d, need %d/%d)",
			implName, t, r.pool.TableEntries, bw, r.pool.Bandwidth, res.TableEntries, res.Bandwidth)
	}
	if r.Capacity > 0 {
		r.inUse++
	}
	if r.pool != nil {
		r.pool.take(res)
	}
	s.nextID++
	s.claims[s.nextID] = claimRecord{implName: implName, res: res, pool: r.pool}
	return s.nextID, nil
}

// Release implements core.DiscoveryClient: it frees a prior claim.
// Releasing an unknown claim is a no-op (idempotent).
func (s *Service) Release(ctx context.Context, claimID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.claims[claimID]
	if !ok {
		return nil
	}
	delete(s.claims, claimID)
	if r, ok := s.regs[rec.implName]; ok && r.Capacity > 0 && r.inUse > 0 {
		r.inUse--
	}
	if rec.pool != nil {
		rec.pool.release(rec.res)
	}
	return nil
}

// InUse reports the outstanding claim count for an implementation.
func (s *Service) InUse(implName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.regs[implName]; ok {
		return r.inUse
	}
	return 0
}

// Len returns the number of live advertisements.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	now := s.now()
	for _, r := range s.regs {
		if !now.After(r.Expires) {
			n++
		}
	}
	return n
}

var _ core.DiscoveryClient = (*Service)(nil)
