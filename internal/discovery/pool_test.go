package discovery

import (
	"testing"

	"github.com/bertha-net/bertha/internal/core"
)

// Pool tests: the §6 "Scheduling and Placement" scenario — several
// chunnel offloads compete for one switch's multi-dimensional resources
// (table space, bandwidth), and a claim that does not fit falls through
// to software.

func TestPoolSharedAcrossImpls(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	s.Register(offer("shard/switch", "shard", 30), 0, 0)
	s.Register(offer("mcast/switch", "ordered_mcast", 30), 0, 0)

	// One switch: 10 table entries, 8 bandwidth units, shared.
	pool := &Pool{TableEntries: 10, Bandwidth: 8}
	if err := s.SetPool("shard/switch", pool); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPool("mcast/switch", pool); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPool("missing", pool); err == nil {
		t.Error("SetPool on unregistered impl should fail")
	}

	// shard takes 6 table entries + 4 bw.
	id1, err := s.Claim(ctx, "shard/switch", core.Resources{TableEntries: 6, Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// mcast wants 6 table entries: does not fit (6+6 > 10) — the paper's
	// "the switch only has capacity for one".
	if _, err := s.Claim(ctx, "mcast/switch", core.Resources{TableEntries: 6, Bandwidth: 2}); err == nil {
		t.Fatal("second large claim should exhaust the shared pool")
	}
	// A smaller mcast deployment fits.
	id2, err := s.Claim(ctx, "mcast/switch", core.Resources{TableEntries: 4, Bandwidth: 2})
	if err != nil {
		t.Fatalf("small claim should fit: %v", err)
	}
	tbl, bw := pool.Used()
	if tbl != 10 || bw != 6 {
		t.Errorf("pool usage: table=%d bw=%d", tbl, bw)
	}

	// Releasing the first claim frees its dimensions exactly.
	s.Release(ctx, id1)
	tbl, bw = pool.Used()
	if tbl != 4 || bw != 2 {
		t.Errorf("after release: table=%d bw=%d", tbl, bw)
	}
	// Now the big claim fits.
	if _, err := s.Claim(ctx, "shard/switch", core.Resources{TableEntries: 6, Bandwidth: 4}); err != nil {
		t.Errorf("claim after release: %v", err)
	}
	s.Release(ctx, id2)
}

func TestPoolBandwidthDimension(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	s.Register(offer("x/switch", "x", 30), 0, 0)
	pool := &Pool{TableEntries: 100, Bandwidth: 2}
	s.SetPool("x/switch", pool)

	// Table space abounds but bandwidth is the binding constraint.
	if _, err := s.Claim(ctx, "x/switch", core.Resources{TableEntries: 1, Bandwidth: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Claim(ctx, "x/switch", core.Resources{TableEntries: 1, Bandwidth: 1}); err == nil {
		t.Error("bandwidth dimension should be exhausted")
	}
	// Zero-resource claims always fit.
	if _, err := s.Claim(ctx, "x/switch", core.Resources{}); err != nil {
		t.Errorf("zero-resource claim: %v", err)
	}
}

func TestPoolSurvivesReRegistration(t *testing.T) {
	ctx := ctxT(t)
	s := NewService()
	s.Register(offer("x/switch", "x", 30), 0, 0)
	pool := &Pool{TableEntries: 4, Bandwidth: 4}
	s.SetPool("x/switch", pool)
	s.Claim(ctx, "x/switch", core.Resources{TableEntries: 3})
	// Advertisement refresh keeps the pool and its usage.
	s.Register(offer("x/switch", "x", 30), 0, 0)
	if _, err := s.Claim(ctx, "x/switch", core.Resources{TableEntries: 3}); err == nil {
		t.Error("pool usage lost across re-registration")
	}
}

func TestPoolReleaseClampsAtZero(t *testing.T) {
	p := &Pool{TableEntries: 4, Bandwidth: 4}
	p.take(core.Resources{TableEntries: 2, Bandwidth: 1})
	p.release(core.Resources{TableEntries: 5, Bandwidth: 5}) // over-release
	tbl, bw := p.Used()
	if tbl != 0 || bw != 0 {
		t.Errorf("clamp: table=%d bw=%d", tbl, bw)
	}
}
