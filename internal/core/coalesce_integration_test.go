package core_test

import (
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// TestEndpointCoalescing drives WithCoalescing through the full
// negotiated path: assemble wraps the stack in a Coalescer, the managed
// connection forwards Flush, and rapid per-message sends reach the peer
// batched but in order.
func TestEndpointCoalescing(t *testing.T) {
	tel := telemetry.New()
	srv, err := core.NewEndpoint("srv", spec.Seq(), core.WithRegistry(core.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := core.NewEndpoint("cli", spec.Seq(),
		core.WithRegistry(core.NewRegistry()),
		core.WithTelemetry(tel),
		core.WithCoalescing(core.CoalesceConfig{Delay: time.Millisecond, Idle: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := dialAndServe(t, cli, srv)
	ctx := ctxT(t)

	const total = 10
	for i := 0; i < total; i++ {
		b := wire.NewBufFrom(core.HeadroomOf(cconn), []byte{byte('a' + i)})
		if err := core.SendBuf(ctx, cconn, b); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// The managed connection forwards Flush to the coalescer.
	if err := core.Flush(ctx, cconn); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < total; i++ {
		got, err := sconn.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != byte('a'+i) {
			t.Fatalf("recv %d = %q, want %q", i, got, []byte{byte('a' + i)})
		}
	}
	// With a huge Idle window the third and later sends of the rapid run
	// must have gone through the queue.
	if got := tel.Counter("coalesce/enqueued").Value(); got != total-2 {
		t.Errorf("coalesce/enqueued = %d, want %d", got, total-2)
	}
}
