package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
)

// Teardown-protocol tests: datagram transports have no connection state,
// so Bertha connections announce close explicitly and treat a foreign
// handshake (source-address reuse) as peer departure. Without this, an
// ephemeral port reused by a new client would bind its handshake to a
// stale server-side connection (the failure mode the Figure 3 experiment
// hit at a few hundred connections over real UDP).

func pair(t *testing.T) (cli, srv core.Conn) {
	t.Helper()
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 1, 0))
	regS.MustRegister(newMark("mark/fb", 1, 0))
	srvEp, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	return dialAndServe(t, cliEp, srvEp)
}

func TestCloseNotifiesPeer(t *testing.T) {
	cli, srv := pair(t)
	echoOnce(t, cli, srv, "before close")
	cli.Close()
	// The server's next Recv observes the peer's departure rather than
	// blocking forever.
	rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := srv.Recv(rctx)
	if !errors.Is(err, core.ErrClosed) {
		t.Fatalf("server recv after client close: %v", err)
	}
}

func TestForeignHelloClosesStaleConnection(t *testing.T) {
	// Two sequential connections over the SAME base transport pair,
	// simulating source-address reuse on UDP: after the first client
	// vanishes without a close (packet lost), the second client's hello
	// must evict the stale server state and negotiate fresh.
	ctx := ctxT(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 1, 0))
	regS.MustRegister(newMark("mark/fb", 1, 0))
	srvEp, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))

	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("h", "svc")
	nl, _ := srvEp.Listen(ctx, base)

	// First connection: server app echoes (so the server side reads and
	// can observe control traffic).
	srvErr := make(chan error, 2)
	go func() {
		for {
			conn, err := nl.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn core.Conn) {
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						srvErr <- err
						return
					}
					conn.Send(ctx, m)
				}
			}(conn)
		}
	}()

	raw1, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	conn1, err := cliEp.Connect(ctx, raw1)
	if err != nil {
		t.Fatal(err)
	}
	conn1.Send(ctx, []byte("x"))
	if m, err := conn1.Recv(ctx); err != nil || string(m) != "x" {
		t.Fatalf("first conn echo: %q %v", m, err)
	}

	// The first client vanishes WITHOUT closing (its close message is
	// "lost"): we abandon conn1 and dial a second connection whose raw
	// conn is... a new pipe (pipes don't reuse addresses, so emulate by
	// connecting again and verifying the server tears down conn1 state
	// when conn2's hello would arrive on it). Over pipes each dial is a
	// fresh peer, so instead verify the tagged-layer behaviour directly:
	// a second Connect on the SAME network must still succeed while
	// conn1 is alive and unread.
	raw2, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	conn2, err := cliEp.Connect(ctx, raw2)
	if err != nil {
		t.Fatalf("second connect: %v", err)
	}
	conn2.Send(ctx, []byte("y"))
	if m, err := conn2.Recv(ctx); err != nil || string(m) != "y" {
		t.Fatalf("second conn echo: %q %v", m, err)
	}
	conn1.Close()
	conn2.Close()
	// Both server loops observe closes.
	for i := 0; i < 2; i++ {
		select {
		case err := <-srvErr:
			if !errors.Is(err, core.ErrClosed) {
				t.Errorf("server loop %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server loop never observed close")
		}
	}
}

func TestManySequentialConnectionsOverUDP(t *testing.T) {
	// The real regression: hundreds of sequential connections over real
	// UDP sockets exercise kernel ephemeral-port reuse. Before the
	// teardown protocol this failed within ~300 connections.
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := ctxT(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 1, 0))
	regS.MustRegister(newMark("mark/fb", 1, 0))
	srvEp, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cliEp, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))

	base, err := transport.ListenUDP("h", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	nl, _ := srvEp.Listen(ctx, base)
	go func() {
		for {
			conn, err := nl.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn core.Conn) {
				defer conn.Close()
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					conn.Send(ctx, m)
				}
			}(conn)
		}
	}()

	for i := 0; i < 500; i++ {
		raw, err := transport.DialUDP("h", base.Addr().Addr)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := cliEp.Connect(ctx, raw)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		if err := conn.Send(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if m, err := conn.Recv(ctx); err != nil || m[0] != byte(i) {
			t.Fatalf("echo %d: %v %v", i, m, err)
		}
		conn.Close()
	}
}
