// Distributed-tracing plumbing for negotiated stacks: the WithTracing
// option, the trace pseudo-chunnel's negotiation identity, and the
// sampler that stamps trace contexts onto application sends at the top
// of the assembled stack.
//
// Division of labour: the sampler here decides *whether* a message is
// traced and attaches the context to the wire.Buf (fields ride alongside
// the payload, zero bytes until serialization); the trace chunnel
// (chunnels/traced), negotiated into the stack like any other layer,
// serializes the context into wire headroom at the innermost position so
// it crosses the network and simnet switches can peek at it; and the
// instrumented wrappers in instrument.go record per-layer spans whenever
// a Buf passing through them carries a context.
package core

import (
	"context"

	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/wire"
)

// Negotiation identity of the trace pseudo-chunnel. It is appended to
// the resolved stack by decide() — never declared in an application
// spec — when the server endpoint has tracing enabled and both sides
// registered the implementation.
const (
	// TraceChunnelType is the pseudo-chunnel type of the tracing layer.
	TraceChunnelType = "trace"
	// TraceImplName is the in-band context-stamping implementation.
	TraceImplName = "trace/inline"
)

// EnvTraceRing is the Env resource key under which assemble publishes
// the endpoint's span ring; the trace chunnel's Wrap looks it up to
// record receive-side spans.
const EnvTraceRing = "telemetry/span-ring"

// TraceConfig parameterizes WithTracing; see tracing.Config.
type TraceConfig = tracing.Config

// WithTracing enables distributed message tracing on connections this
// endpoint establishes: a sampler stamps roughly SampleRate of
// application sends with a 16-byte trace context, the negotiated trace
// chunnel carries it across the wire, and every instrumented layer
// records spans into a per-registry ring of RingSize spans (query via
// /debug/bertha?spans=). On a server endpoint it also authorizes
// negotiation to append the trace chunnel to resolved stacks. The
// unsampled fast path stays zero-allocation (see TestTracingAllocs).
func WithTracing(cfg TraceConfig) Option {
	cfg.Fill()
	return func(e *Endpoint) { e.tracing = &cfg }
}

// stackHasTrace reports whether negotiation put the trace chunnel into
// the resolved stack.
func stackHasTrace(stack []ResolvedNode) bool {
	for _, rn := range stack {
		if rn.Type == TraceChunnelType {
			return true
		}
	}
	return false
}

// samplerConn sits at the very top of an assembled traced stack (above
// the coalescer, below the managedConn) and makes the per-send sampling
// decision. It must be outermost so that every instrumented wrapper
// underneath sees the trace context on the way down. Receive-side
// traffic passes through untouched — contexts arrive from the wire.
type samplerConn struct {
	Conn
	sampler *tracing.Sampler
}

func (c *samplerConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	if c.sampler.Sample() {
		b.SetTrace(tracing.NewTraceID(), 0, 0)
	}
	return SendBuf(ctx, c.Conn, b)
}

// Send lifts sampled plain-[]byte sends onto the Buf path — a bare
// []byte has nowhere to carry the trace context, and applications using
// the simple API are exactly the ones relying on tracing to see their
// stack. Unsampled sends stay on the plain path untouched.
func (c *samplerConn) Send(ctx context.Context, p []byte) error {
	if c.sampler.Sample() {
		b := wire.NewBufFrom(HeadroomOf(c.Conn), p)
		b.SetTrace(tracing.NewTraceID(), 0, 0)
		return SendBuf(ctx, c.Conn, b)
	}
	return c.Conn.Send(ctx, p)
}

// SendBufs samples the burst as a unit: one decision, stamped on the
// first element, and the per-layer span records carry the element
// count. Stamping every element would multiply ring pressure by the
// burst size without adding attribution signal.
func (c *samplerConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if len(bs) > 0 && c.sampler.Sample() {
		bs[0].SetTrace(tracing.NewTraceID(), 0, 0)
	}
	return SendBufs(ctx, c.Conn, bs)
}

func (c *samplerConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return RecvBuf(ctx, c.Conn)
}

func (c *samplerConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	return RecvBufs(ctx, c.Conn, into)
}

func (c *samplerConn) Flush(ctx context.Context) error { return Flush(ctx, c.Conn) }

func (c *samplerConn) Headroom() int { return HeadroomOf(c.Conn) }

// HopStat is one stack layer's exclusive-latency estimate: the layer's
// inclusive send latency minus its inner neighbour's, i.e. the time the
// layer itself costs. This is the per-hop signal a renegotiation policy
// compares against its thresholds.
type HopStat struct {
	Chunnel string  `json:"chunnel"`
	Impl    string  `json:"impl"`
	ExclP50 float64 `json:"excl_p50_us"`
	ExclP95 float64 `json:"excl_p95_us"`
}

// ConnHopStats computes the per-layer exclusive latency rollup for a
// negotiated connection (outermost layer first) and folds it into each
// layer's ConnMetrics EWMA. Returns nil for connections not built by an
// Endpoint.
func ConnHopStats(conn Conn) []HopStat {
	if m, ok := conn.(*managedConn); ok {
		return m.HopStats()
	}
	return nil
}
