package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// SelectContext carries the information a select node needs when
// negotiation resolves it to one branch: the two endpoint hosts and the
// set of chunnel types with at least one usable candidate implementation.
type SelectContext struct {
	ClientHost string
	ServerHost string
	// Available reports whether a chunnel type has at least one usable
	// candidate implementation for this connection.
	Available func(chunnelType string) bool
}

// SelectResolver picks the branch a select node takes for a connection.
// It returns the branch index. The local fast-path chunnel (Listing 1)
// registers a resolver that picks the IPC branch when both hosts match.
type SelectResolver func(args []wire.Value, branches []*spec.Stack, sctx SelectContext) (int, error)

// Registry holds the chunnel implementations available to one endpoint:
// the fallback implementations applications register at launch (Listing 5
// line 2) and any locally-known accelerated variants. It also tracks
// select resolvers and the optimizer metadata chunnel packages declare.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	impls     map[string][]Impl         // chunnel type -> implementations
	byName    map[string]Impl           // impl name -> implementation
	resolvers map[string]SelectResolver // select-node type -> resolver
	meta      map[string]TypeMeta       // chunnel type -> optimizer metadata
	fusions   map[[2]string]string      // adjacent pair -> fused type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		impls:     make(map[string][]Impl),
		byName:    make(map[string]Impl),
		resolvers: make(map[string]SelectResolver),
		meta:      make(map[string]TypeMeta),
		fusions:   make(map[[2]string]string),
	}
}

// Register adds an implementation. Registering two implementations with
// the same name is an error.
func (r *Registry) Register(impl Impl) error {
	info := impl.Info()
	if err := info.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[info.Name]; dup {
		return fmt.Errorf("core: implementation %q already registered", info.Name)
	}
	r.byName[info.Name] = impl
	r.impls[info.Type] = append(r.impls[info.Type], impl)
	return nil
}

// MustRegister is Register, panicking on error. Intended for package-level
// registration of shipped chunnels.
func (r *Registry) MustRegister(impl Impl) {
	if err := r.Register(impl); err != nil {
		panic(err)
	}
}

// Lookup returns the implementation with the given name.
func (r *Registry) Lookup(name string) (Impl, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	impl, ok := r.byName[name]
	return impl, ok
}

// ImplsFor returns the implementations registered for a chunnel type,
// sorted by descending priority then name (deterministic).
func (r *Registry) ImplsFor(chunnelType string) []Impl {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]Impl(nil), r.impls[chunnelType]...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Info(), out[j].Info()
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return a.Name < b.Name
	})
	return out
}

// Types returns all chunnel types with at least one registered
// implementation, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.impls))
	for t := range r.impls {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Fallback returns the highest-priority userspace implementation for a
// chunnel type, or ErrNoFallback. The paper requires every chunnel type to
// have a host-fallback implementation (§2); CheckFallbacks enforces this
// for a whole DAG.
func (r *Registry) Fallback(chunnelType string) (Impl, error) {
	for _, impl := range r.ImplsFor(chunnelType) {
		if impl.Info().Location == LocUserspace {
			return impl, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNoFallback, chunnelType)
}

// CheckFallbacks verifies every concrete chunnel type in the stack has a
// fallback implementation registered. Select-node combinator types are
// exempt: they resolve away during negotiation.
func (r *Registry) CheckFallbacks(s *spec.Stack) error {
	for _, t := range s.ConcreteTypes() {
		if _, err := r.Fallback(t); err != nil {
			return err
		}
	}
	return nil
}

// Offers returns wire-encodable advertisements for every registered
// implementation of the given chunnel types (all types when types is
// nil), used in negotiation hellos.
func (r *Registry) Offers(types []string) []ImplOffer {
	var out []ImplOffer
	if types == nil {
		types = r.Types()
	}
	for _, t := range types {
		for _, impl := range r.ImplsFor(t) {
			if impl.Info().DiscoveryOnly {
				continue // advertised by the operator via discovery, not by us
			}
			out = append(out, OfferFromInfo(impl.Info()))
		}
	}
	return out
}

// RegisterResolver installs the select resolver for a select-node type.
func (r *Registry) RegisterResolver(selectType string, res SelectResolver) {
	r.mu.Lock()
	r.resolvers[selectType] = res
	r.mu.Unlock()
}

// Resolver returns the select resolver for a type; the second result is
// false when none is registered (the runtime then uses the default
// first-available-branch rule).
func (r *Registry) Resolver(selectType string) (SelectResolver, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	res, ok := r.resolvers[selectType]
	return res, ok
}

// defaultRegistry is the process-wide registry used by the public API.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry. Applications
// registering fallbacks at launch (Listing 5) use this registry unless
// they construct endpoints with an explicit one.
func DefaultRegistry() *Registry { return defaultRegistry }
