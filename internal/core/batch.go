package core

import (
	"context"
	"fmt"

	"github.com/bertha-net/bertha/internal/wire"
)

// BatchConn is the vectored extension of the zero-copy data plane:
// connections that implement it move bursts of wire.Buf messages in one
// call, amortizing per-message costs (lock acquisitions, syscalls,
// channel operations) across the burst. Transports with kernel batch
// support (sendmmsg/recvmmsg) collapse a burst into one syscall; cheap
// header chunnels stamp every message in one pass before handing the
// whole burst down.
//
// Ownership stays linear, extended element-wise:
//
//   - SendBufs transfers ownership of every element of bs to the
//     connection, even on error: the callee releases whatever it did not
//     transmit. The caller must not touch any element afterwards.
//   - RecvBufs fills into[:n] with buffers owned by the caller, who must
//     Release (or CopyOut / Detach) each exactly once. It blocks for the
//     first message and then opportunistically drains whatever else is
//     immediately available, so n satisfies 1 ≤ n ≤ len(into) on
//     success. On error no buffers are delivered (n == 0).
//
// The error contract for SendBufs is "first error aborts the burst":
// a failure at message i stops transmission, releases messages i..end,
// and reports how many were sent via *BatchError.
type BatchConn interface {
	Conn
	// SendBufs transmits the burst in order, consuming every element.
	SendBufs(ctx context.Context, bs []*wire.Buf) error
	// RecvBufs receives up to len(into) messages, blocking only for the
	// first, and returns how many of into's leading elements it filled.
	RecvBufs(ctx context.Context, into []*wire.Buf) (int, error)
}

// BatchError reports a burst that aborted partway: Sent messages were
// transmitted before Err stopped the burst, and the remainder was
// released by the callee.
type BatchError struct {
	// Sent is how many leading messages of the burst were transmitted.
	Sent int
	// Err is the failure that aborted the burst.
	Err error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("batch aborted after %d sent: %v", e.Sent, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Err }

// BatchSent returns how many messages a SendBufs error left transmitted
// (0 for non-batch errors, which abort before anything was sent). Layers
// that split a burst into sub-bursts use it to accumulate an accurate
// total across inner BatchErrors.
func BatchSent(err error) int {
	if be, ok := err.(*BatchError); ok {
		return be.Sent
	}
	return 0
}

// SendBufs sends the burst over conn, taking the vectored path when conn
// implements BatchConn and degrading to a per-message SendBuf loop
// otherwise. Ownership of every element transfers to the callee in both
// cases; on error the unsent tail is released and the returned
// *BatchError reports how many messages went out.
func SendBufs(ctx context.Context, conn Conn, bs []*wire.Buf) error {
	if bc, ok := conn.(BatchConn); ok {
		return bc.SendBufs(ctx, bs)
	}
	for i, b := range bs {
		if err := SendBuf(ctx, conn, b); err != nil {
			// bs[i] was consumed by SendBuf (released on its failure
			// paths), so only the strictly-unsent tail remains ours.
			ReleaseAll(bs[i+1:])
			return &BatchError{Sent: i, Err: err}
		}
	}
	return nil
}

// RecvBufs receives at least one and up to len(into) messages from conn
// into into, returning how many leading elements it filled. Non-batch
// connections deliver exactly one message per call (the per-message
// fallback); batch-aware connections drain whatever is immediately
// available after the first. An empty into returns (0, nil).
func RecvBufs(ctx context.Context, conn Conn, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	if bc, ok := conn.(BatchConn); ok {
		return bc.RecvBufs(ctx, into)
	}
	b, err := RecvBuf(ctx, conn)
	if err != nil {
		return 0, err
	}
	into[0] = b
	return 1, nil
}

// ReleaseAll releases every buffer in bs — the cleanup path for a burst
// owner aborting partway. Nil elements are skipped.
func ReleaseAll(bs []*wire.Buf) {
	for _, b := range bs {
		b.Release()
	}
}
