package core

import (
	"context"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// instrumentedConn records data-plane telemetry for one stack layer: it
// sits immediately above a chunnel (or the base transport) and counts
// sends/recvs/bytes/errors and inclusive latency into a ConnMetrics
// preallocated at assembly time. All recording is atomic adds on
// preexisting memory — the zero-copy path through it stays at 0
// allocs/op (see TestStackRoundTripAllocs, which runs instrumented).
type instrumentedConn struct {
	Conn
	m *telemetry.ConnMetrics
}

// Instrument wraps conn so every send and receive is recorded into m.
// The wrapper preserves the zero-copy BufConn path and headroom
// reporting of the connection below it. A nil m returns conn unwrapped.
func Instrument(conn Conn, m *telemetry.ConnMetrics) Conn {
	if m == nil {
		return conn
	}
	return &instrumentedConn{Conn: conn, m: m}
}

func (c *instrumentedConn) Send(ctx context.Context, p []byte) error {
	n := len(p)
	t0 := time.Now()
	err := c.Conn.Send(ctx, p)
	c.m.RecordSend(n, time.Since(t0), err)
	return err
}

// SendBuf forwards the zero-copy path; b's length is read before
// ownership transfers down the stack.
func (c *instrumentedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	n := b.Len()
	t0 := time.Now()
	err := SendBuf(ctx, c.Conn, b)
	c.m.RecordSend(n, time.Since(t0), err)
	return err
}

func (c *instrumentedConn) Recv(ctx context.Context) ([]byte, error) {
	t0 := time.Now()
	p, err := c.Conn.Recv(ctx)
	c.m.RecordRecv(len(p), time.Since(t0), err)
	return p, err
}

// RecvBuf forwards the zero-copy path; the returned buffer's ownership
// passes untouched to the caller.
func (c *instrumentedConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	t0 := time.Now()
	b, err := RecvBuf(ctx, c.Conn)
	n := 0
	if err == nil {
		n = b.Len()
	}
	c.m.RecordRecv(n, time.Since(t0), err)
	return b, err
}

// SendBufs forwards the vectored path, recording the realized burst
// size into the layer's batch histogram. Payload bytes are summed
// before ownership transfers down the stack. A partial burst (the
// callee aborted after sending a prefix) records the transmitted count.
func (c *instrumentedConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	bytes := 0
	for _, b := range bs {
		bytes += b.Len()
	}
	t0 := time.Now()
	err := SendBufs(ctx, c.Conn, bs)
	sent := len(bs)
	if err != nil {
		sent = BatchSent(err)
	}
	c.m.RecordSendBatch(sent, bytes, time.Since(t0), err)
	return err
}

// RecvBufs forwards the vectored path, recording the realized burst
// size; ownership of the filled buffers passes untouched to the caller.
func (c *instrumentedConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	t0 := time.Now()
	n, err := RecvBufs(ctx, c.Conn, into)
	bytes := 0
	for _, b := range into[:n] {
		bytes += b.Len()
	}
	c.m.RecordRecvBatch(n, bytes, time.Since(t0), err)
	return n, err
}

// Headroom reports the wrapped connection's headroom: instrumentation
// adds no headers.
func (c *instrumentedConn) Headroom() int { return HeadroomOf(c.Conn) }
