package core

import (
	"context"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/wire"
)

// instrumentedConn records data-plane telemetry for one stack layer: it
// sits immediately above a chunnel (or the base transport) and counts
// sends/recvs/bytes/errors and inclusive latency into a ConnMetrics
// preallocated at assembly time. All recording is atomic adds on
// preexisting memory — the zero-copy path through it stays at 0
// allocs/op (see TestStackRoundTripAllocs, which runs instrumented).
//
// When the stack is traced, the same wrapper doubles as the span
// recorder: a Buf carrying a trace context (stamped by the sampler on
// the way down, parsed from the wire by the trace chunnel on the way
// up) gets one span per layer crossing recorded through the span
// handle. Untraced Bufs cost one branch.
type instrumentedConn struct {
	Conn
	m    *telemetry.ConnMetrics
	span tracing.Handle
}

// Instrument wraps conn so every send and receive is recorded into m.
// The wrapper preserves the zero-copy BufConn path and headroom
// reporting of the connection below it. A nil m returns conn unwrapped.
func Instrument(conn Conn, m *telemetry.ConnMetrics) Conn {
	return InstrumentTraced(conn, m, tracing.Handle{})
}

// InstrumentTraced is Instrument plus distributed-tracing span
// recording: sampled messages crossing this layer record spans through
// h. An inactive h degrades to plain Instrument.
func InstrumentTraced(conn Conn, m *telemetry.ConnMetrics, h tracing.Handle) Conn {
	if m == nil {
		return conn
	}
	return &instrumentedConn{Conn: conn, m: m, span: h}
}

func (c *instrumentedConn) Send(ctx context.Context, p []byte) error {
	n := len(p)
	t0 := time.Now()
	err := c.Conn.Send(ctx, p)
	c.m.RecordSend(n, time.Since(t0), err)
	return err
}

// SendBuf forwards the zero-copy path; b's length and trace context are
// read before ownership transfers down the stack.
func (c *instrumentedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	n := b.Len()
	id, _, hop, traced := b.Trace()
	t0 := time.Now()
	err := SendBuf(ctx, c.Conn, b)
	d := time.Since(t0)
	c.m.RecordSend(n, d, err)
	if traced && c.span.Active() {
		c.span.Record(tracing.KindSend, id, t0, d, n, 1, hop, err != nil)
	}
	return err
}

func (c *instrumentedConn) Recv(ctx context.Context) ([]byte, error) {
	t0 := time.Now()
	p, err := c.Conn.Recv(ctx)
	c.m.RecordRecv(len(p), time.Since(t0), err)
	return p, err
}

// RecvBuf forwards the zero-copy path; the returned buffer's ownership
// passes untouched to the caller. A buffer whose trace context was
// parsed by a layer below records this layer's receive span; recv span
// durations include time blocked waiting for the message.
func (c *instrumentedConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	t0 := time.Now()
	b, err := RecvBuf(ctx, c.Conn)
	d := time.Since(t0)
	n := 0
	if err == nil {
		n = b.Len()
	}
	c.m.RecordRecv(n, d, err)
	if err == nil && c.span.Active() {
		if id, _, hop, ok := b.Trace(); ok {
			c.span.Record(tracing.KindRecv, id, t0, d, n, 1, hop, false)
		}
	}
	return b, err
}

// SendBufs forwards the vectored path, recording the realized burst
// size into the layer's batch histogram. Payload bytes are summed
// before ownership transfers down the stack. A partial burst (the
// callee aborted after sending a prefix) records the transmitted count.
func (c *instrumentedConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	bytes := 0
	var tid uint64
	var thop uint8
	traced := false
	for _, b := range bs {
		bytes += b.Len()
		if !traced {
			if id, _, hop, ok := b.Trace(); ok {
				tid, thop, traced = id, hop, true
			}
		}
	}
	t0 := time.Now()
	err := SendBufs(ctx, c.Conn, bs)
	d := time.Since(t0)
	sent := len(bs)
	if err != nil {
		sent = BatchSent(err)
	}
	c.m.RecordSendBatch(sent, bytes, d, err)
	// A sampled burst records one span carrying the element count —
	// attribution treats the vectored call as a unit.
	if traced && c.span.Active() {
		c.span.Record(tracing.KindSend, tid, t0, d, bytes, len(bs), thop, err != nil)
	}
	return err
}

// RecvBufs forwards the vectored path, recording the realized burst
// size; ownership of the filled buffers passes untouched to the caller.
func (c *instrumentedConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	t0 := time.Now()
	n, err := RecvBufs(ctx, c.Conn, into)
	d := time.Since(t0)
	bytes := 0
	var tid uint64
	var thop uint8
	traced := false
	for _, b := range into[:n] {
		bytes += b.Len()
		if !traced {
			if id, _, hop, ok := b.Trace(); ok {
				tid, thop, traced = id, hop, true
			}
		}
	}
	c.m.RecordRecvBatch(n, bytes, d, err)
	if traced && c.span.Active() {
		c.span.Record(tracing.KindRecv, tid, t0, d, bytes, n, thop, false)
	}
	return n, err
}

// Headroom reports the wrapped connection's headroom: instrumentation
// adds no headers.
func (c *instrumentedConn) Headroom() int { return HeadroomOf(c.Conn) }
