package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/wire"
)

// sinkConn is a batch-aware send sink recording every message and the
// burst sizes it was handed, with an injectable failure. Safe for
// concurrent use.
type sinkConn struct {
	mu     sync.Mutex
	msgs   [][]byte
	bursts []int
	fail   error // when set, sends fail with this error
	closed bool
}

func (s *sinkConn) Send(ctx context.Context, p []byte) error {
	return s.SendBuf(ctx, wire.NewBufFrom(0, p))
}

func (s *sinkConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		b.Release()
		return s.fail
	}
	s.msgs = append(s.msgs, append([]byte(nil), b.Bytes()...))
	b.Release()
	return nil
}

func (s *sinkConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		ReleaseAll(bs)
		return &BatchError{Sent: 0, Err: s.fail}
	}
	s.bursts = append(s.bursts, len(bs))
	for _, b := range bs {
		s.msgs = append(s.msgs, append([]byte(nil), b.Bytes()...))
		b.Release()
	}
	return nil
}

func (s *sinkConn) Recv(ctx context.Context) ([]byte, error)       { return nil, ErrClosed }
func (s *sinkConn) RecvBuf(ctx context.Context) (*wire.Buf, error) { return nil, ErrClosed }
func (s *sinkConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	return 0, ErrClosed
}
func (s *sinkConn) Headroom() int    { return 0 }
func (s *sinkConn) LocalAddr() Addr  { return Addr{Net: "sink", Addr: "local"} }
func (s *sinkConn) RemoteAddr() Addr { return Addr{Net: "sink", Addr: "remote"} }
func (s *sinkConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *sinkConn) setFail(err error) {
	s.mu.Lock()
	s.fail = err
	s.mu.Unlock()
}

func (s *sinkConn) snapshot() (msgs [][]byte, bursts []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.msgs...), append([]int(nil), s.bursts...)
}

// hotCoalescer returns a coalescer whose load detector always reads
// "under load" (Idle is enormous) with the first two warm-up sends
// already made, so the next SendBuf enqueues deterministically.
func hotCoalescer(t *testing.T, inner Conn, cfg CoalesceConfig, tel *telemetry.Registry) *Coalescer {
	t.Helper()
	if cfg.Idle == 0 {
		cfg.Idle = time.Hour
	}
	c := NewCoalescer(inner, cfg, tel)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte("warmup"))); err != nil {
			t.Fatalf("warm-up send %d: %v", i, err)
		}
	}
	return c
}

// releasedBuf reports whether b was released (access panics after
// Release/Detach; Release itself stays a no-op).
func releasedBuf(b *wire.Buf) (released bool) {
	defer func() {
		if recover() != nil {
			released = true
		}
	}()
	b.Len()
	return false
}

func TestCoalesceSizeFlush(t *testing.T) {
	sink := &sinkConn{}
	tel := telemetry.New()
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 8, Idle: time.Hour}, tel)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	msgs, bursts := sink.snapshot()
	if len(msgs) != 2+8 { // 2 warm-up directs + the burst
		t.Fatalf("sink saw %d messages, want 10", len(msgs))
	}
	if len(bursts) != 1 || bursts[0] != 8 {
		t.Fatalf("sink bursts = %v, want [8]", bursts)
	}
	if got := tel.Counter("coalesce/flush_size").Value(); got != 1 {
		t.Fatalf("flush_size = %d, want 1", got)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestCoalesceTimerFlush(t *testing.T) {
	sink := &sinkConn{}
	tel := telemetry.New()
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Millisecond, MaxBurst: 64, Idle: time.Hour}, tel)
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, bursts := sink.snapshot()
		if len(bursts) == 1 && bursts[0] == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer flush never delivered the burst; bursts = %v", bursts)
		}
		time.Sleep(time.Millisecond)
	}
	if got := tel.Counter("coalesce/flush_timer").Value(); got != 1 {
		t.Fatalf("flush_timer = %d, want 1", got)
	}
	if tel.Histogram("coalesce/delay").Count() == 0 {
		t.Fatal("coalesce/delay histogram recorded nothing")
	}
}

func TestCoalesceIdleBypass(t *testing.T) {
	sink := &sinkConn{}
	tel := telemetry.New()
	// A 1ns window with real sleeps between sends: every send finds the
	// connection idle and takes the direct path.
	c := NewCoalescer(sink, CoalesceConfig{Delay: time.Hour, Idle: time.Nanosecond}, tel)
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		time.Sleep(100 * time.Microsecond)
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	msgs, bursts := sink.snapshot()
	if len(msgs) != 5 || len(bursts) != 0 {
		t.Fatalf("sink saw %d messages, %v bursts; want 5 direct sends", len(msgs), bursts)
	}
	if got := tel.Counter("coalesce/idle_bypass").Value(); got != 5 {
		t.Fatalf("idle_bypass = %d, want 5", got)
	}
	if got := tel.Counter("coalesce/enqueued").Value(); got != 0 {
		t.Fatalf("enqueued = %d, want 0", got)
	}
}

func TestCoalesceExplicitFlush(t *testing.T) {
	sink := &sinkConn{}
	tel := telemetry.New()
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, Idle: time.Hour}, tel)
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	_, bursts := sink.snapshot()
	if len(bursts) != 1 || bursts[0] != 4 {
		t.Fatalf("bursts = %v, want [4]", bursts)
	}
	if got := tel.Counter("coalesce/flush_explicit").Value(); got != 1 {
		t.Fatalf("flush_explicit = %d, want 1", got)
	}
	// A second Flush with nothing pending is a successful no-op and does
	// not count as a flush.
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
	if got := tel.Counter("coalesce/flush_explicit").Value(); got != 1 {
		t.Fatalf("flush_explicit after empty flush = %d, want 1", got)
	}
}

func TestCoalesceFIFOOrder(t *testing.T) {
	sink := &sinkConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 4, Idle: time.Hour}, telemetry.New())
	ctx := context.Background()
	// Sequential sends from one caller must reach the sink in order even
	// as the path shifts from direct (cold, warming) to coalesced (hot).
	const total = 23
	for i := 0; i < total; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil { // flushes the partial tail
		t.Fatalf("close: %v", err)
	}
	msgs, _ := sink.snapshot()
	if len(msgs) != total {
		t.Fatalf("sink saw %d messages, want %d", len(msgs), total)
	}
	for i, m := range msgs {
		if len(m) != 1 || m[0] != byte(i) {
			t.Fatalf("message %d out of order: got %v", i, m)
		}
	}
}

func TestCoalesceFlushErrorInline(t *testing.T) {
	sink := &sinkConn{}
	boom := errors.New("boom")
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 4, Idle: time.Hour}, telemetry.New())
	defer c.Close()
	ctx := context.Background()
	sink.setFail(boom)
	var err error
	for i := 0; i < 4; i++ {
		err = c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)}))
		if err != nil {
			break
		}
	}
	// The size-cap flush runs on the fourth enqueuer's stack; that caller
	// gets the BatchError.
	if !errors.Is(err, boom) {
		t.Fatalf("size-cap flush error = %v, want %v", err, boom)
	}
	if BatchSent(err) != 0 {
		t.Fatalf("BatchSent = %d, want 0", BatchSent(err))
	}
	// The queue drained (buffers were consumed by the failed flush), so
	// the error is not redelivered.
	sink.setFail(nil)
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush after failure: %v", err)
	}
}

func TestCoalesceFlushErrorDeferredToNextSender(t *testing.T) {
	sink := &sinkConn{}
	boom := errors.New("boom")
	tel := telemetry.New()
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Millisecond, MaxBurst: 64, Idle: time.Hour}, tel)
	defer c.Close()
	ctx := context.Background()
	sink.setFail(boom)
	if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte("doomed"))); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	// Wait for the timer flush to fail in the background.
	deadline := time.Now().Add(5 * time.Second)
	for tel.Counter("coalesce/flush_errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer flush never ran")
		}
		time.Sleep(time.Millisecond)
	}
	sink.setFail(nil)
	// The deferred error reaches the next sender exactly once, and that
	// sender's buffer is released unsent.
	b := wire.NewBufFrom(0, []byte("next"))
	err := c.SendBuf(ctx, b)
	if !errors.Is(err, boom) {
		t.Fatalf("deferred error = %v, want %v", err, boom)
	}
	if !releasedBuf(b) {
		t.Fatal("buffer handed to the failing send was not released")
	}
	if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte("after"))); err != nil {
		t.Fatalf("send after deferred delivery: %v", err)
	}
}

func TestCoalesceCtxCancelMidQueue(t *testing.T) {
	sink := &sinkConn{}
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 64, Idle: time.Hour}, telemetry.New())
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	b := wire.NewBufFrom(0, []byte("canceled"))
	if err := c.SendBuf(canceled, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("send with canceled ctx = %v, want context.Canceled", err)
	}
	if !releasedBuf(b) {
		t.Fatal("buffer of the canceled send was not released")
	}
	// The messages queued before cancellation still flush.
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	_, bursts := sink.snapshot()
	if len(bursts) != 1 || bursts[0] != 3 {
		t.Fatalf("bursts = %v, want [3]", bursts)
	}
}

func TestCoalesceCloseFlushesAndRejects(t *testing.T) {
	sink := &sinkConn{}
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 64, Idle: time.Hour}, telemetry.New())
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, bursts := sink.snapshot()
	if len(bursts) != 1 || bursts[0] != 5 {
		t.Fatalf("bursts after close = %v, want [5]", bursts)
	}
	b := wire.NewBufFrom(0, []byte("late"))
	if err := c.SendBuf(ctx, b); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if !releasedBuf(b) {
		t.Fatal("buffer sent after close was not released")
	}
}

func TestCoalesceSendBufsFlushesBacklog(t *testing.T) {
	sink := &sinkConn{}
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 64, Idle: time.Hour}, telemetry.New())
	defer c.Close()
	ctx := context.Background()
	if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{0})); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	batch := make([]*wire.Buf, 3)
	for i := range batch {
		batch[i] = wire.NewBufFrom(0, []byte{byte(1 + i)})
	}
	if err := c.SendBufs(ctx, batch); err != nil {
		t.Fatalf("SendBufs: %v", err)
	}
	msgs, bursts := sink.snapshot()
	// Backlog burst [0] first, then the caller's burst [1 2 3].
	if len(bursts) != 2 || bursts[0] != 1 || bursts[1] != 3 {
		t.Fatalf("bursts = %v, want [1 3]", bursts)
	}
	for i, m := range msgs[len(msgs)-4:] {
		if len(m) != 1 || m[0] != byte(i) {
			t.Fatalf("message %d out of order: %v", i, m)
		}
	}
}

func TestCoalesceConcurrentSenders(t *testing.T) {
	sink := &sinkConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: 50 * time.Microsecond, MaxBurst: 16, Idle: time.Hour}, telemetry.New())
	ctx := context.Background()
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	var failed atomic.Int64
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := []byte(fmt.Sprintf("%d/%d", s, i))
				if err := c.SendBuf(ctx, wire.NewBufFrom(0, payload)); err != nil {
					failed.Add(1)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d senders failed", n)
	}
	msgs, _ := sink.snapshot()
	if len(msgs) != senders*perSender {
		t.Fatalf("sink saw %d messages, want %d", len(msgs), senders*perSender)
	}
	seen := make(map[string]bool, len(msgs))
	for _, m := range msgs {
		if seen[string(m)] {
			t.Fatalf("message %q delivered twice", m)
		}
		seen[string(m)] = true
	}
}

func TestCoalesceTimerVsExplicitFlushRace(t *testing.T) {
	sink := &sinkConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: 20 * time.Microsecond, MaxBurst: 8, Idle: time.Hour}, telemetry.New())
	ctx := context.Background()
	done := make(chan struct{})
	var flushErr atomic.Value
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if err := c.Flush(ctx); err != nil {
				flushErr.Store(err)
				return
			}
		}
	}()
	const total = 2000
	sent := 0
	for i := 0; i < total; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, []byte{byte(i), byte(i >> 8)})); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		sent++
	}
	<-done
	if err, _ := flushErr.Load().(error); err != nil {
		t.Fatalf("explicit flush: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	msgs, _ := sink.snapshot()
	if len(msgs) != sent {
		t.Fatalf("sink saw %d messages, want %d", len(msgs), sent)
	}
}

// nullBatchConn is an allocation-free sink for the alloc gate: it counts
// and releases.
type nullBatchConn struct {
	sent atomic.Int64
}

func (n *nullBatchConn) Send(ctx context.Context, p []byte) error { n.sent.Add(1); return nil }
func (n *nullBatchConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	b.Release()
	n.sent.Add(1)
	return nil
}
func (n *nullBatchConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		b.Release()
	}
	n.sent.Add(int64(len(bs)))
	return nil
}
func (n *nullBatchConn) Recv(ctx context.Context) ([]byte, error)       { return nil, ErrClosed }
func (n *nullBatchConn) RecvBuf(ctx context.Context) (*wire.Buf, error) { return nil, ErrClosed }
func (n *nullBatchConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	return 0, ErrClosed
}
func (n *nullBatchConn) Headroom() int    { return 0 }
func (n *nullBatchConn) LocalAddr() Addr  { return Addr{} }
func (n *nullBatchConn) RemoteAddr() Addr { return Addr{} }
func (n *nullBatchConn) Close() error     { return nil }

// TestCoalesceAdaptiveDelay pins the gap estimator's clamp behaviour:
// fresh connections keep the full configured budget, a sustained fast
// sender converges to the Delay/16 floor, and a slow sender (whose
// samples clamp at Delay) recovers the full budget.
func TestCoalesceAdaptiveDelay(t *testing.T) {
	const delay = 800 * time.Microsecond
	sink := &sinkConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: delay, MaxBurst: 64, Idle: time.Hour}, telemetry.New())
	defer c.Close()

	if got := c.adaptiveDelay(); got != delay {
		t.Fatalf("fresh adaptiveDelay = %v, want the configured %v", got, delay)
	}
	for i := 0; i < 100; i++ {
		c.observeGap(int64(time.Microsecond))
	}
	if got, want := c.adaptiveDelay(), delay/16; got != want {
		t.Fatalf("fast-sender adaptiveDelay = %v, want the %v floor", got, want)
	}
	for i := 0; i < 100; i++ {
		c.observeGap(int64(time.Hour)) // clamps to delay
	}
	if got := c.adaptiveDelay(); got != delay {
		t.Fatalf("slow-sender adaptiveDelay = %v, want the %v ceiling", got, delay)
	}
}

// TestCoalesceAdaptiveDelayFloor pins the absolute 2µs floor for tiny
// configured budgets, where Delay/16 would undershoot the timer's
// useful resolution.
func TestCoalesceAdaptiveDelayFloor(t *testing.T) {
	sink := &sinkConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: 10 * time.Microsecond, MaxBurst: 64, Idle: time.Hour}, telemetry.New())
	defer c.Close()
	for i := 0; i < 100; i++ {
		c.observeGap(1)
	}
	if got, want := c.adaptiveDelay(), 2*time.Microsecond; got != want {
		t.Fatalf("adaptiveDelay = %v, want the absolute %v floor", got, want)
	}
}

// TestCoalesceAdaptiveDelayGauge pins that arming the flush timer
// publishes the chosen budget, so /debug/bertha shows what the
// estimator is actually doing per connection.
func TestCoalesceAdaptiveDelayGauge(t *testing.T) {
	sink := &sinkConn{}
	tel := telemetry.New()
	c := hotCoalescer(t, sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 64, Idle: time.Hour}, tel)
	defer c.Close()
	if err := c.SendBuf(context.Background(), wire.NewBufFrom(0, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	got := tel.Gauge("coalesce/adaptive_delay").Value()
	if got <= 0 || got > int64(time.Hour) {
		t.Fatalf("coalesce/adaptive_delay = %d, want a positive budget ≤ the configured Delay", got)
	}
}

// TestCoalesceAllocs is the CI allocation gate for the coalesced send
// path: enqueue and flush must not allocate per message (the pending
// burst arrays are preallocated, buffers are pooled, and the telemetry
// counters are atomics).
func TestCoalesceAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sink := &nullBatchConn{}
	c := NewCoalescer(sink, CoalesceConfig{Delay: time.Hour, MaxBurst: 32, Idle: time.Hour}, telemetry.New())
	defer c.Close()
	ctx := context.Background()
	payload := []byte("0123456789abcdef")
	// Warm the detector and the buffer pool.
	for i := 0; i < 64; i++ {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, payload)); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.SendBuf(ctx, wire.NewBufFrom(0, payload)); err != nil {
			t.Fatalf("send: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("coalesced SendBuf allocates %.1f/op, want 0", allocs)
	}
}
