package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/wire"
)

// ConnectMulti establishes one logical connection to several peer
// endpoints at once — Listing 2: "since one end of this connection
// involves multiple endpoints, the argument passed into connect is a
// vector containing endpoint addresses... initial discovery and
// negotiation involves all endpoints."
//
// Negotiation runs with every peer; all peers must resolve the DAG to
// the same implementation bindings (the compatibility check of §4.3
// extended to groups). Chunnels implementing MultiWrapper (ordered
// multicast) receive all per-peer connections at once; other chunnels
// wrap each per-peer connection independently. If no chunnel collapses
// the group, the result is a fan-out connection: Send reaches every
// peer, Recv returns whichever peer's message arrives next.
func (e *Endpoint) ConnectMulti(ctx context.Context, raws []Conn) (Conn, error) {
	if len(raws) == 0 {
		return nil, fmt.Errorf("%w: no endpoints", ErrNegotiation)
	}
	if len(raws) == 1 {
		return e.Connect(ctx, raws[0])
	}

	type result struct {
		idx  int
		conn Conn
		sh   *ServerHello
		err  error
	}
	offers := e.registry.Offers(nil)
	results := make(chan result, len(raws))
	tagged := make([]*taggedConn, len(raws))
	for i, raw := range raws {
		tagged[i] = newTaggedConn(raw)
		go func(i int) {
			hello := &ClientHello{
				Nonce:  newNonce(),
				Name:   e.name,
				Host:   hostOr(e.env.Host, raws[i].LocalAddr().Host),
				Spec:   e.stack,
				Offers: offers,
			}
			enc := wire.NewEncoder(nil)
			hello.Encode(enc)
			sh, err := awaitServerHello(ctx, tagged[i], append([]byte(nil), enc.Bytes()...), hello.Nonce)
			if err == nil && sh.Err != "" {
				err = fmt.Errorf("%w: peer %d: %s", ErrNegotiation, i, sh.Err)
			}
			results <- result{idx: i, sh: sh, err: err}
		}(i)
	}

	hellos := make([]*ServerHello, len(raws))
	var firstErr error
	for range raws {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		hellos[r.idx] = r.sh
	}
	if firstErr != nil {
		for _, raw := range raws {
			raw.Close()
		}
		return nil, firstErr
	}

	// Group compatibility: every peer must have bound the same stack.
	ref := hellos[0].Stack
	for i, sh := range hellos[1:] {
		if !sameBindings(ref, sh.Stack) {
			for _, raw := range raws {
				raw.Close()
			}
			return nil, fmt.Errorf("%w: peer %d bound a different stack", ErrIncompatibleSpecs, i+1)
		}
	}

	return e.assembleMulti(ctx, tagged, hellos)
}

func sameBindings(a, b []ResolvedNode) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].ImplName != b[i].ImplName {
			return false
		}
	}
	return true
}

// assembleMulti builds the client-side stack over the group: multi-aware
// chunnels collapse the per-peer connections; others wrap per peer.
func (e *Endpoint) assembleMulti(ctx context.Context, tagged []*taggedConn, hellos []*ServerHello) (Conn, error) {
	conns := make([]Conn, len(tagged))
	for i, tc := range tagged {
		// Per-peer base connections share one "transport" metrics entry
		// per network kind; group data-plane totals aggregate there.
		conns[i] = Instrument(tc.dataConn(), e.tel.Conn("transport", tc.raw.LocalAddr().Net))
	}
	stack := hellos[0].Stack
	var active []activeImpl

	fail := func(err error) (Conn, error) {
		teardownAll(ctx, active, e)
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}

	for i := len(stack) - 1; i >= 0; i-- {
		rn := stack[i]
		if !rn.RunsAt(SideClient) {
			continue
		}
		impl, ok := e.registry.Lookup(rn.ImplName)
		if !ok {
			return fail(fmt.Errorf("%w: %q not in local registry", ErrNoImplementation, rn.ImplName))
		}
		// Use the first peer's params that are non-empty (peers may
		// contribute identical params; the group sequencer address comes
		// from any one of them).
		params := rn.Params
		for _, sh := range hellos {
			if len(sh.Stack) > i && len(sh.Stack[i].Params) > 0 {
				params = sh.Stack[i].Params
				break
			}
		}
		if err := impl.Init(ctx, e.env, rn.Args); err != nil {
			return fail(fmt.Errorf("bertha: init %q: %w", rn.ImplName, err))
		}
		m := e.tel.Conn(rn.Type, rn.ImplName)
		if mw, ok := impl.(MultiWrapper); ok && len(conns) > 1 {
			merged, err := mw.WrapMulti(ctx, conns, rn.Args, params, SideClient, e.env)
			if err != nil {
				impl.Teardown(ctx, e.env)
				return fail(fmt.Errorf("bertha: wrap-multi %q: %w", rn.ImplName, err))
			}
			conns = []Conn{Instrument(merged, m)}
		} else {
			for ci, c := range conns {
				wrapped, err := impl.Wrap(ctx, c, rn.Args, params, SideClient, e.env)
				if err != nil {
					impl.Teardown(ctx, e.env)
					return fail(fmt.Errorf("bertha: wrap %q (peer %d): %w", rn.ImplName, ci, err))
				}
				conns[ci] = Instrument(wrapped, m)
			}
		}
		active = append(active, activeImpl{impl: impl, claim: rn.ClaimID})
	}

	var out Conn
	if len(conns) == 1 {
		out = conns[0]
	} else {
		out = newFanConn(conns)
	}
	if e.coalesce != nil {
		out = NewCoalescer(out, *e.coalesce, e.tel)
	}
	return &managedConn{Conn: out, ep: e, side: SideClient, active: active}, nil
}

// fanConn is the default group connection when no chunnel collapses the
// peers: Send fans out to every peer, Recv returns the next message from
// any peer.
type fanConn struct {
	conns []Conn
	in    chan []byte
	ctx   context.Context
	stop  context.CancelFunc
	once  sync.Once
}

func newFanConn(conns []Conn) *fanConn {
	ctx, cancel := context.WithCancel(context.Background())
	f := &fanConn{conns: conns, in: make(chan []byte, 256), ctx: ctx, stop: cancel}
	for _, c := range conns {
		go func(c Conn) {
			for {
				m, err := c.Recv(f.ctx)
				if err != nil {
					return
				}
				select {
				case f.in <- m:
				case <-f.ctx.Done():
					return
				}
			}
		}(c)
	}
	return f
}

func (f *fanConn) Send(ctx context.Context, p []byte) error {
	var firstErr error
	for _, c := range f.conns {
		if err := c.Send(ctx, p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (f *fanConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case m := <-f.in:
		return m, nil
	case <-f.ctx.Done():
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *fanConn) LocalAddr() Addr  { return f.conns[0].LocalAddr() }
func (f *fanConn) RemoteAddr() Addr { return f.conns[0].RemoteAddr() }

func (f *fanConn) Close() error {
	f.once.Do(func() {
		f.stop()
		for _, c := range f.conns {
			c.Close()
		}
	})
	return nil
}
