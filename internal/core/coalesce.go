package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// Send-side coalescing: the edge layer that makes the batched datapath
// the default datapath. PR 5's vectored path (sendmmsg/GSO) pays off
// only for callers that batch by hand through SendBufs; the Coalescer
// gives per-message SendBuf callers the same wire behaviour by gathering
// sustained senders into bursts TCP-autocork style, while an idle
// connection bypasses the queue entirely and keeps the direct path's
// latency. assemble wraps the negotiated stack in a Coalescer when the
// endpoint was built with WithCoalescing.

// Coalescing defaults: a 50µs flush budget keeps the added latency under
// load well below a loopback RTT, and 64 messages is the kernel's UDP
// GSO segment cap — the largest burst the transport can turn into one
// syscall.
const (
	DefaultCoalesceDelay = 50 * time.Microsecond
	DefaultCoalesceBurst = 64
)

// CoalesceConfig parameterizes send-side coalescing (WithCoalescing).
type CoalesceConfig struct {
	// Delay is the flush-timer budget ceiling: the longest a queued
	// message waits before the pending burst is flushed. The effective
	// timer adapts per connection — four EWMA inter-send gaps, clamped
	// to [Delay/16, Delay] — so sustained fast senders flush well
	// inside the ceiling. Default 50µs.
	Delay time.Duration
	// MaxBurst is the burst-size cap: reaching it flushes immediately.
	// Default 64 (the UDP GSO segment cap).
	MaxBurst int
	// Idle is the load-detection window: a send is "under load" when it
	// arrives within Idle of the previous send, and only then does the
	// queue engage. Defaults to Delay.
	Idle time.Duration
}

func (c *CoalesceConfig) fill() {
	if c.Delay <= 0 {
		c.Delay = DefaultCoalesceDelay
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = DefaultCoalesceBurst
	}
	if c.Idle <= 0 {
		c.Idle = c.Delay
	}
}

// Flusher is implemented by connections that buffer sends (the
// Coalescer): Flush pushes everything pending to the wire. Callers with
// a latency-critical message send it and then Flush.
type Flusher interface {
	Flush(ctx context.Context) error
}

// Flush flushes conn's pending sends when it buffers any (Flusher);
// for every other connection it is a no-op.
func Flush(ctx context.Context, conn Conn) error {
	if f, ok := conn.(Flusher); ok {
		return f.Flush(ctx)
	}
	return nil
}

// Flush reasons index the per-reason counters.
const (
	flushReasonSize = iota // burst-size cap reached
	flushReasonTimer
	flushReasonExplicit // Flush call, Close, or a caller's own SendBufs
	flushReasonCount
)

// Coalescer is a per-connection send queue at the top of the stack:
// SendBuf under load enqueues into a pending burst flushed by whichever
// comes first — the flush timer (adaptive, bounded by Delay), the burst
// cap (MaxBurst), or an explicit Flush — and the burst rides the inner
// connection's SendBufs/sendmmsg/GSO machinery. The load detector is adaptive and
// allocation-free: a send arriving more than Idle after the previous one
// finds an idle connection and takes the direct path (a couple of atomic
// operations of overhead); the queue engages only from the third send of
// a rapid run, so a lone message — or a lone pair — never waits on the
// timer.
//
// Error semantics extend the BatchError contract: a flush triggered
// inline (size cap, explicit Flush, Close) reports its error — usually a
// *BatchError with partial-send accounting — to that caller; a
// timer-triggered flush has no caller on the stack, so its error is
// deferred and delivered exactly once to the next sender (or to Flush or
// Close). Buffers are in all cases consumed by the flush: the inner
// SendBufs releases whatever it did not transmit.
type Coalescer struct {
	inner    Conn
	delay    time.Duration
	idle     int64 // load-detection window, nanoseconds
	max      int
	headroom int

	last    atomic.Int64 // UnixNano of the most recent send
	hot     atomic.Bool  // a recent send already followed another
	queued  atomic.Int64 // messages queued or in a flush in flight
	ewmaGap atomic.Int64 // EWMA of inter-send gaps, nanoseconds (α = 1/8)

	mu sync.Mutex
	// pending is the open burst. A store transfers ownership to the
	// flush path, which hands the burst to the inner SendBufs (releasing
	// every element exactly once, sent or not).
	pending []*wire.Buf //bertha:queue flushed by flushPending; inner SendBufs releases
	n       int
	firstAt int64 // UnixNano of the burst's first enqueue
	ferr    error // deferred timer-flush error awaiting a caller

	flight   []*wire.Buf   // swap partner of pending during a flush
	flushSem chan struct{} // serializes flushes (a mutex may not be held across SendBufs)
	timer    *time.Timer
	bg       context.Context // lifecycle root for timer flushes; canceled on Close
	cancel   context.CancelFunc
	once     sync.Once

	enqueued   *telemetry.Counter
	idleBypass *telemetry.Counter
	flushErrs  *telemetry.Counter
	reasons    [flushReasonCount]*telemetry.Counter
	delayHist  *telemetry.Histogram
	adaptGauge *telemetry.Gauge
}

var (
	_ BufConn      = (*Coalescer)(nil)
	_ BatchConn    = (*Coalescer)(nil)
	_ HeadroomConn = (*Coalescer)(nil)
	_ Flusher      = (*Coalescer)(nil)
)

// NewCoalescer wraps inner in a send-side coalescer. Telemetry lands in
// tel (the process default when nil): flush-reason counters
// coalesce/flush_{size,timer,explicit}, coalesce/idle_bypass,
// coalesce/enqueued, coalesce/flush_errors, the coalesce/delay
// histogram of enqueue→flush dwell times, and the
// coalesce/adaptive_delay gauge of the timer budget (nanoseconds) most
// recently armed by the gap estimator.
func NewCoalescer(inner Conn, cfg CoalesceConfig, tel *telemetry.Registry) *Coalescer {
	cfg.fill()
	if tel == nil {
		tel = telemetry.Default()
	}
	c := &Coalescer{
		inner:    inner,
		delay:    cfg.Delay,
		idle:     cfg.Idle.Nanoseconds(),
		max:      cfg.MaxBurst,
		headroom: HeadroomOf(inner),
		pending:  make([]*wire.Buf, cfg.MaxBurst),
		flight:   make([]*wire.Buf, cfg.MaxBurst),
		flushSem: make(chan struct{}, 1),

		enqueued:   tel.Counter("coalesce/enqueued"),
		idleBypass: tel.Counter("coalesce/idle_bypass"),
		flushErrs:  tel.Counter("coalesce/flush_errors"),
		delayHist:  tel.Histogram("coalesce/delay"),
		adaptGauge: tel.Gauge("coalesce/adaptive_delay"),
	}
	// Until the gap estimator warms up, the timer budget is the
	// configured maximum: a fresh connection behaves exactly like the
	// fixed-delay coalescer and only tightens as real gaps arrive.
	c.ewmaGap.Store(cfg.Delay.Nanoseconds())
	c.reasons[flushReasonSize] = tel.Counter("coalesce/flush_size")
	c.reasons[flushReasonTimer] = tel.Counter("coalesce/flush_timer")
	c.reasons[flushReasonExplicit] = tel.Counter("coalesce/flush_explicit")
	c.bg, c.cancel = context.WithCancel(context.Background())
	c.timer = time.NewTimer(time.Hour)
	if !c.timer.Stop() {
		<-c.timer.C
	}
	go c.flushLoop()
	return c
}

// SendBuf implements BufConn. Idle connections (and the first two sends
// of a rapid run) take the direct path; sustained senders enqueue.
// Sends behind a non-empty queue always enqueue, so one caller's
// messages never reorder around its own backlog.
func (c *Coalescer) SendBuf(ctx context.Context, b *wire.Buf) error {
	now := time.Now().UnixNano()
	prev := c.last.Swap(now)
	if prev != 0 {
		c.observeGap(now - prev)
	}
	recent := now-prev < c.idle
	if c.queued.Load() > 0 {
		return c.enqueue(ctx, b, now)
	}
	if recent {
		if c.hot.Load() {
			return c.enqueue(ctx, b, now)
		}
		c.hot.Store(true) // warming: one more rapid send engages the queue
	} else if c.hot.Load() {
		c.hot.Store(false) // cooled off
	}
	c.idleBypass.Inc()
	return SendBuf(ctx, c.inner, b)
}

// Send implements Conn by copying p into a pooled buffer and sending it
// through the coalescing path, so plain-[]byte callers coalesce too.
func (c *Coalescer) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(c.headroom, p))
}

// enqueue adds b to the pending burst, flushing inline when the burst
// cap is reached. A deferred timer-flush error is delivered here (and b
// released unsent) so flush failures always reach a sender.
func (c *Coalescer) enqueue(ctx context.Context, b *wire.Buf, now int64) error {
	c.mu.Lock()
	if err := c.takeDeferredErr(); err != nil {
		c.mu.Unlock()
		b.Release()
		return err
	}
	if c.bg.Err() != nil {
		c.mu.Unlock()
		b.Release()
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		b.Release()
		return err
	}
	for c.n >= c.max {
		// Full and a flush already racing: push it through, then retry.
		c.mu.Unlock()
		if err := c.flush(ctx, flushReasonSize); err != nil {
			b.Release()
			return err
		}
		c.mu.Lock()
	}
	c.pending[c.n] = b
	c.n++
	c.queued.Add(1)
	c.enqueued.Inc()
	if c.n == 1 {
		c.firstAt = now
		d := c.adaptiveDelay()
		c.adaptGauge.Set(int64(d))
		c.timer.Reset(d)
	}
	full := c.n >= c.max
	c.mu.Unlock()
	if full {
		return c.flush(ctx, flushReasonSize)
	}
	return nil
}

// observeGap feeds one inter-send gap into the EWMA the flush timer
// adapts to. Samples are clamped to the configured Delay so an idle
// stretch cannot poison the estimate, and the update races benignly:
// a lost sample just makes the estimator converge one send slower.
func (c *Coalescer) observeGap(gap int64) {
	if max := c.delay.Nanoseconds(); gap > max {
		gap = max
	}
	e := c.ewmaGap.Load()
	c.ewmaGap.Store(e + (gap-e)>>3)
}

// adaptiveDelay is the flush-timer budget for the burst being opened:
// four estimated inter-send gaps, so a steady sender accumulates a few
// messages per burst, clamped between Delay/16 (never below 2µs — the
// timer's useful resolution) and the configured Delay. A fast sender
// therefore flushes well inside the fixed budget, cutting queue dwell,
// while a sender pacing near the budget keeps the full window.
func (c *Coalescer) adaptiveDelay() time.Duration {
	d := time.Duration(4 * c.ewmaGap.Load())
	min := c.delay / 16
	if min < 2*time.Microsecond {
		min = 2 * time.Microsecond
	}
	if d < min {
		d = min
	}
	if d > c.delay {
		d = c.delay
	}
	return d
}

// takeDeferredErr returns and clears the deferred timer-flush error.
// Caller holds c.mu.
func (c *Coalescer) takeDeferredErr() error {
	err := c.ferr
	c.ferr = nil
	return err
}

// flush drains the pending burst through the inner connection. The
// semaphore (not a mutex: the inner SendBufs blocks) serializes
// flushes, so bursts hit the wire in enqueue order.
func (c *Coalescer) flush(ctx context.Context, reason int) error {
	select {
	case c.flushSem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	err := c.flushPending(ctx, reason)
	<-c.flushSem
	return err
}

// flushPending swaps the open burst out under the lock and sends it
// with the lock released. Caller holds the flush semaphore.
func (c *Coalescer) flushPending(ctx context.Context, reason int) error {
	c.mu.Lock()
	n := c.n
	if n == 0 {
		// Nothing pending: an explicit flush still collects any error a
		// timer flush left behind.
		var err error
		if reason == flushReasonExplicit {
			err = c.takeDeferredErr()
		}
		c.mu.Unlock()
		return err
	}
	c.pending, c.flight = c.flight, c.pending
	c.n = 0
	first := c.firstAt
	c.timer.Stop() // a residual fire just flushes an empty queue
	c.mu.Unlock()

	c.delayHist.Observe(time.Duration(time.Now().UnixNano() - first))
	c.reasons[reason].Inc()
	burst := c.flight[:n]
	err := SendBufs(ctx, c.inner, burst)
	for i := range burst {
		burst[i] = nil
	}
	c.queued.Add(int64(-n))
	if err == nil {
		return nil
	}
	c.flushErrs.Inc()
	if reason == flushReasonTimer {
		// No caller on this stack: defer the error for the next sender
		// (or Flush/Close), who receives it exactly once.
		c.mu.Lock()
		if c.ferr == nil {
			c.ferr = err
		}
		c.mu.Unlock()
		return nil
	}
	return err
}

// flushLoop runs timer-budget flushes until Close cancels the
// coalescer's lifecycle root.
func (c *Coalescer) flushLoop() {
	for {
		select {
		case <-c.timer.C:
			c.flush(c.bg, flushReasonTimer)
		case <-c.bg.Done():
			return
		}
	}
}

// Flush implements Flusher: it pushes the pending burst to the wire and
// reports any pending flush failure (including a deferred timer-flush
// error) to the caller.
func (c *Coalescer) Flush(ctx context.Context) error {
	return c.flush(ctx, flushReasonExplicit)
}

// SendBufs implements BatchConn: the caller batched already, so the
// burst is handed straight down — after flushing any coalesced backlog
// so messages stay in send order. On a backlog-flush failure the burst
// is released unsent and the error wrapped per the BatchError contract
// (Sent counts bs elements only).
func (c *Coalescer) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	c.last.Store(time.Now().UnixNano())
	if c.queued.Load() > 0 {
		if err := c.flush(ctx, flushReasonExplicit); err != nil {
			ReleaseAll(bs)
			return &BatchError{Sent: 0, Err: err}
		}
	}
	return SendBufs(ctx, c.inner, bs)
}

// RecvBuf implements BufConn (receive path is untouched by coalescing).
func (c *Coalescer) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return RecvBuf(ctx, c.inner)
}

// RecvBufs implements BatchConn.
func (c *Coalescer) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	return RecvBufs(ctx, c.inner, into)
}

// Recv implements Conn.
func (c *Coalescer) Recv(ctx context.Context) ([]byte, error) {
	return c.inner.Recv(ctx)
}

// Headroom implements HeadroomConn: the coalescer adds no headers.
func (c *Coalescer) Headroom() int { return c.headroom }

// LocalAddr implements Conn.
func (c *Coalescer) LocalAddr() Addr { return c.inner.LocalAddr() }

// RemoteAddr implements Conn.
func (c *Coalescer) RemoteAddr() Addr { return c.inner.RemoteAddr() }

// Close flushes the pending burst, stops the flush loop, and closes the
// inner connection. A flush failure (including a deferred one) is
// reported when the close itself succeeds.
func (c *Coalescer) Close() error {
	var ferr error
	c.once.Do(func() {
		ferr = c.flush(c.bg, flushReasonExplicit)
		c.cancel()
		c.timer.Stop()
	})
	err := c.inner.Close()
	if err == nil {
		err = ferr
	}
	return err
}
