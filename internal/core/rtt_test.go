package core_test

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
)

// countingConn counts datagrams each way on the base transport.
type countingConn struct {
	core.Conn
	sent, recvd *atomic.Int64
}

func (c countingConn) Send(ctx context.Context, p []byte) error {
	c.sent.Add(1)
	return c.Conn.Send(ctx, p)
}

func (c countingConn) Recv(ctx context.Context) ([]byte, error) {
	m, err := c.Conn.Recv(ctx)
	if err == nil {
		c.recvd.Add(1)
	}
	return m, err
}

// countingDiscovery counts discovery round trips.
type countingDiscovery struct {
	*fakeDiscovery
	queries atomic.Int64
}

func (c *countingDiscovery) Query(ctx context.Context, types []string) ([]core.ImplOffer, error) {
	c.queries.Add(1)
	return c.fakeDiscovery.Query(ctx, types)
}

// TestEstablishmentRoundTripCount checks Figure 3's accounting:
// "Establishing a Bertha connection requires two additional IPC round
// trips to query the discovery service and negotiate the connection
// mechanism. However, subsequent messages on an established connection
// do not encounter additional latency."
func TestEstablishmentRoundTripCount(t *testing.T) {
	ctx := ctxT(t)
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 1, 0))
	regS.MustRegister(newMark("mark/fb", 1, 0))

	disc := &countingDiscovery{fakeDiscovery: newFakeDiscovery()}
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(spec.New("mark")),
		core.WithRegistry(regC), core.WithDiscovery(disc))

	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("h", "svc")
	nl, _ := srv.Listen(ctx, base)
	srvConns := make(chan core.Conn, 1)
	go func() {
		c, err := nl.Accept(ctx)
		if err == nil {
			srvConns <- c
		}
	}()

	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	var sent, recvd atomic.Int64
	counted := countingConn{Conn: raw, sent: &sent, recvd: &recvd}

	conn, err := cli.Connect(ctx, counted)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sconn := <-srvConns
	defer sconn.Close()

	// Round trip 1: the discovery query.
	if got := disc.queries.Load(); got != 1 {
		t.Errorf("discovery queries during establishment: %d, want 1", got)
	}
	// Round trip 2: negotiation — exactly one ClientHello out, one
	// ServerHello back on a loss-free transport.
	if got := sent.Load(); got != 1 {
		t.Errorf("datagrams sent during establishment: %d, want 1 (ClientHello)", got)
	}
	if got := recvd.Load(); got != 1 {
		t.Errorf("datagrams received during establishment: %d, want 1 (ServerHello)", got)
	}

	// Established-connection messages add no extra control traffic:
	// one request = one datagram each way.
	sent.Store(0)
	recvd.Store(0)
	for i := 0; i < 10; i++ {
		if err := conn.Send(ctx, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := sconn.Recv(ctx); err != nil {
			t.Fatal(err)
		}
		if err := sconn.Send(ctx, []byte("pong")); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sent.Load(); got != 10 {
		t.Errorf("steady-state datagrams out: %d, want 10", got)
	}
	if got := recvd.Load(); got != 10 {
		t.Errorf("steady-state datagrams in: %d, want 10", got)
	}
}
