package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/wire"
)

// Channel tags multiplexing negotiation control traffic and application
// data on the same base connection. Every datagram on a negotiated
// connection carries a one-byte tag.
const (
	tagCtrl byte = 0x00
	tagData byte = 0x01
)

// helloTimeout is the client's per-attempt wait for a ServerHello before
// retransmitting its ClientHello over a lossy base transport.
const helloTimeout = 250 * time.Millisecond

// helloRetries bounds ClientHello retransmissions.
const helloRetries = 8

// Endpoint is the Bertha equivalent of a socket (§3.1): a named endpoint
// carrying a Chunnel DAG, a registry of local implementations, an optional
// discovery client, and a selection policy. Endpoints are created once and
// used to establish many connections.
type Endpoint struct {
	name      string
	stack     *spec.Stack
	registry  *Registry
	discovery DiscoveryClient
	policy    Policy
	env       *Env
	optimizer *Optimizer
	tel       *telemetry.Registry
	coalesce  *CoalesceConfig
	tracing   *TraceConfig
	reactor   *ReactorConfig
}

// Option configures an Endpoint.
type Option func(*Endpoint)

// WithRegistry uses reg instead of the process-wide default registry.
func WithRegistry(reg *Registry) Option {
	return func(e *Endpoint) { e.registry = reg }
}

// WithDiscovery attaches a discovery client; negotiation then considers
// operator-registered accelerated implementations (§4.2).
func WithDiscovery(d DiscoveryClient) Option {
	return func(e *Endpoint) { e.discovery = d }
}

// WithPolicy overrides the implementation-selection policy (§4.3).
func WithPolicy(p Policy) Option {
	return func(e *Endpoint) { e.policy = p }
}

// WithEnv supplies the execution environment (host identity, dialer,
// attachment points).
func WithEnv(env *Env) Option {
	return func(e *Endpoint) { e.env = env }
}

// WithOptimizer enables DAG optimization passes during negotiation (§6).
func WithOptimizer(o *Optimizer) Option {
	return func(e *Endpoint) { e.optimizer = o }
}

// WithTelemetry records this endpoint's metrics and negotiation traces
// into reg instead of the process-wide telemetry.Default() registry.
// Tests and benchmarks use it to read an isolated registry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(e *Endpoint) { e.tel = reg }
}

// WithCoalescing wraps every connection this endpoint establishes in a
// send-side Coalescer (see that type for semantics): per-message SendBuf
// callers under sustained load are gathered into bursts that ride the
// vectored datapath, while idle connections keep the direct path. The
// zero CoalesceConfig selects the defaults (50µs budget, 64-message
// bursts).
func WithCoalescing(cfg CoalesceConfig) Option {
	cfg.fill()
	return func(e *Endpoint) { e.coalesce = &cfg }
}

// WithReactor configures the sharded reactor runtime on base listeners
// this endpoint listens on (those implementing ReactorConfigurer, i.e.
// the demuxing datagram transports): Shards reactor goroutines drain
// the shared socket into per-connection rings of RingSize messages. The
// zero ReactorConfig selects the defaults (GOMAXPROCS shards, 1024-slot
// rings); listeners without a reactor ignore the option.
func WithReactor(cfg ReactorConfig) Option {
	cfg.fill()
	return func(e *Endpoint) { e.reactor = &cfg }
}

// NewEndpoint creates a connection endpoint with the given debugging name
// and Chunnel DAG — the equivalent of bertha::new(name, wrap!(...)).
func NewEndpoint(name string, stack *spec.Stack, opts ...Option) (*Endpoint, error) {
	if stack == nil {
		stack = spec.Seq()
	}
	if err := stack.Validate(); err != nil {
		return nil, fmt.Errorf("bertha: invalid chunnel DAG: %w", err)
	}
	e := &Endpoint{
		name:     name,
		stack:    stack,
		registry: DefaultRegistry(),
		policy:   DefaultPolicy,
	}
	for _, o := range opts {
		o(e)
	}
	if e.env == nil {
		e.env = NewEnv("")
	}
	if e.tel == nil {
		e.tel = telemetry.Default()
	}
	return e, nil
}

// Name returns the endpoint's debugging name.
func (e *Endpoint) Name() string { return e.name }

// Stack returns the endpoint's declared Chunnel DAG.
func (e *Endpoint) Stack() *spec.Stack { return e.stack }

// Env returns the endpoint's execution environment.
func (e *Endpoint) Env() *Env { return e.env }

// Registry returns the endpoint's implementation registry.
func (e *Endpoint) Registry() *Registry { return e.registry }

// Telemetry returns the registry this endpoint records metrics and
// negotiation traces into.
func (e *Endpoint) Telemetry() *telemetry.Registry { return e.tel }

// negotiator bundles the server-side decision inputs for negotiate.go.
type negotiator struct {
	host      string
	name      string
	stack     *spec.Stack
	registry  *Registry
	policy    Policy
	discovery DiscoveryClient
	env       *Env
	optimizer *Optimizer
	tel       *telemetry.Registry
	// tracing authorizes decide() to append the trace pseudo-chunnel to
	// resolved stacks (both peers must also register it).
	tracing bool
}

// paramProvider finds the negotiation parameter source for a binding: the
// chosen implementation when locally registered, else any local
// implementation of the same chunnel type.
func (n *negotiator) paramProvider(implName, chunnelType string) ParamProvider {
	if impl, ok := n.registry.Lookup(implName); ok {
		if pp, ok := impl.(ParamProvider); ok {
			return pp
		}
	}
	for _, impl := range n.registry.ImplsFor(chunnelType) {
		if pp, ok := impl.(ParamProvider); ok {
			return pp
		}
	}
	return nil
}

// validateArgs checks node arguments with the chosen implementation when
// locally registered, else with any local implementation of the type.
func (n *negotiator) validateArgs(implName, chunnelType string, args []wire.Value) error {
	if impl, ok := n.registry.Lookup(implName); ok {
		if av, ok := impl.(ArgValidator); ok {
			return av.ValidateArgs(args)
		}
		return nil
	}
	for _, impl := range n.registry.ImplsFor(chunnelType) {
		if av, ok := impl.(ArgValidator); ok {
			return av.ValidateArgs(args)
		}
	}
	return nil
}

func (e *Endpoint) negotiator(localHost string) *negotiator {
	host := e.env.Host
	if host == "" {
		host = localHost
	}
	return &negotiator{
		host:      host,
		name:      e.name,
		stack:     e.stack,
		registry:  e.registry,
		policy:    e.policy,
		discovery: e.discovery,
		env:       e.env,
		optimizer: e.optimizer,
		tel:       e.tel,
		tracing:   e.tracing != nil,
	}
}

// trace records a negotiation event into the endpoint's telemetry ring.
func (e *Endpoint) trace(side Side, kind string, ev telemetry.TraceEvent) {
	ev.Endpoint = e.name
	ev.Side = side.String()
	ev.Kind = kind
	e.tel.Trace().Record(ev)
}

// Connect establishes a negotiated connection over the raw base transport
// connection (§4.3). On success the returned Conn carries the full
// chunnel stack both endpoints agreed on.
func (e *Endpoint) Connect(ctx context.Context, raw Conn) (Conn, error) {
	tc := newTaggedConn(raw)

	// Pre-hello discovery round trip: learn about accelerated
	// implementations so our offers include anything we can instantiate.
	offers := e.registry.Offers(nil)
	if e.discovery != nil && !e.stack.Empty() {
		if disc, err := e.discovery.Query(ctx, e.stack.Types()); err == nil {
			host := e.env.Host
			if host == "" {
				host = raw.LocalAddr().Host
			}
			for _, o := range disc {
				if o.Host != "" && o.Host == host {
					offers = append(offers, o)
				}
			}
		}
	}

	hello := &ClientHello{
		Nonce:  newNonce(),
		Name:   e.name,
		Host:   hostOr(e.env.Host, raw.LocalAddr().Host),
		Spec:   e.stack,
		Offers: offers,
	}
	enc := wire.NewEncoder(nil)
	hello.Encode(enc)
	helloBytes := append([]byte(nil), enc.Bytes()...)

	e.trace(SideClient, telemetry.TraceOfferSent, telemetry.TraceEvent{
		Detail: fmt.Sprintf("spec=%s offers=%d", e.stack, len(offers)),
	})
	helloStart := time.Now()
	sh, err := awaitServerHello(ctx, tc, helloBytes, hello.Nonce)
	rtt := time.Since(helloStart)
	if err != nil {
		e.trace(SideClient, telemetry.TraceFailed, telemetry.TraceEvent{Detail: err.Error()})
		raw.Close()
		return nil, err
	}
	if sh.Err != "" {
		e.trace(SideClient, telemetry.TraceFailed, telemetry.TraceEvent{
			Detail: sh.Err, Micros: float64(rtt.Nanoseconds()) / 1e3,
		})
		raw.Close()
		return nil, fmt.Errorf("%w: %s", ErrNegotiation, sh.Err)
	}
	e.trace(SideClient, telemetry.TraceServerHello, telemetry.TraceEvent{
		Detail: fmt.Sprintf("peer=%s stack=%d nodes", sh.Name, len(sh.Stack)),
		Micros: float64(rtt.Nanoseconds()) / 1e3,
	})
	for _, rn := range sh.Stack {
		e.trace(SideClient, telemetry.TraceImplChosen, telemetry.TraceEvent{
			Chunnel: rn.Type, Impl: rn.ImplName,
			Detail: fmt.Sprintf("location=%s owner=%s", rn.Location, rn.Owner),
		})
	}

	conn, err := e.assemble(ctx, tc, sh.Stack, SideClient)
	if err != nil {
		e.trace(SideClient, telemetry.TraceFailed, telemetry.TraceEvent{Detail: err.Error()})
		raw.Close()
		return nil, err
	}
	e.trace(SideClient, telemetry.TraceConnected, telemetry.TraceEvent{
		Detail: describeStack(sh.Stack),
	})
	return conn, nil
}

// awaitServerHello sends the client hello and waits for the matching
// reply, retransmitting over lossy transports.
func awaitServerHello(ctx context.Context, tc *taggedConn, helloBytes []byte, nonce uint64) (*ServerHello, error) {
	for attempt := 0; attempt < helloRetries; attempt++ {
		if err := tc.sendTagged(ctx, tagCtrl, helloBytes); err != nil {
			return nil, fmt.Errorf("%w: send hello: %v", ErrNegotiation, err)
		}
		deadline, cancel := context.WithTimeout(ctx, helloTimeout)
		msg, err := tc.recvCtrl(deadline)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				continue // retransmit
			}
			return nil, fmt.Errorf("%w: %v", ErrNegotiation, err)
		}
		d := wire.NewDecoder(msg)
		if mt := d.Uint8(); mt != msgServerHello {
			continue // stray control message
		}
		sh, err := DecodeServerHello(d)
		if err != nil {
			return nil, err
		}
		if sh.Nonce != nonce {
			continue // reply to an older hello
		}
		return sh, nil
	}
	return nil, fmt.Errorf("%w: no server hello after %d attempts", ErrNegotiation, helloRetries)
}

// Listen wraps a base Listener: each accepted base connection is
// negotiated server-side before being returned.
func (e *Endpoint) Listen(ctx context.Context, base Listener) (Listener, error) {
	if err := e.registry.CheckFallbacks(e.stack); err != nil {
		return nil, err
	}
	if e.reactor != nil {
		if rc, ok := base.(ReactorConfigurer); ok {
			if err := rc.ConfigureReactor(*e.reactor); err != nil {
				return nil, err
			}
		}
	}
	return &negotiatedListener{ep: e, base: base}, nil
}

type negotiatedListener struct {
	ep   *Endpoint
	base Listener
}

func (l *negotiatedListener) Accept(ctx context.Context) (Conn, error) {
	for {
		raw, err := l.base.Accept(ctx)
		if err != nil {
			return nil, err
		}
		conn, err := l.ep.accept(ctx, raw)
		if err != nil {
			// A failed handshake poisons only that peer connection;
			// keep accepting (the failure was already reported to the
			// peer in the ServerHello when possible).
			raw.Close()
			continue
		}
		return conn, nil
	}
}

func (l *negotiatedListener) Addr() Addr   { return l.base.Addr() }
func (l *negotiatedListener) Close() error { return l.base.Close() }

// accept performs the server half of negotiation on one accepted base
// connection.
func (e *Endpoint) accept(ctx context.Context, raw Conn) (Conn, error) {
	tc := newTaggedConn(raw)
	neg := e.negotiator(raw.LocalAddr().Host)

	msg, err := tc.recvCtrl(ctx)
	if err != nil {
		return nil, fmt.Errorf("%w: awaiting client hello: %v", ErrNegotiation, err)
	}
	d := wire.NewDecoder(msg)
	if mt := d.Uint8(); mt != msgClientHello {
		return nil, fmt.Errorf("%w: unexpected control message %d", ErrNegotiation, mt)
	}
	ch, err := DecodeClientHello(d)
	if err != nil {
		return nil, err
	}
	e.trace(SideServer, telemetry.TraceHelloRecv, telemetry.TraceEvent{
		Detail: fmt.Sprintf("peer=%s host=%s spec=%s offers=%d", ch.Name, ch.Host, ch.Spec, len(ch.Offers)),
	})

	sh := &ServerHello{Nonce: ch.Nonce, Name: e.name, Host: neg.host}
	resolved, derr := decide(ctx, ch, neg)
	if derr != nil {
		sh.Err = derr.Error()
	} else {
		sh.Stack = resolved
	}
	enc := wire.NewEncoder(nil)
	sh.Encode(enc)
	reply := append([]byte(nil), enc.Bytes()...)
	if err := tc.sendTagged(ctx, tagCtrl, reply); err != nil {
		return nil, fmt.Errorf("%w: send server hello: %v", ErrNegotiation, err)
	}
	if derr != nil {
		e.trace(SideServer, telemetry.TraceFailed, telemetry.TraceEvent{Detail: derr.Error()})
		return nil, derr
	}
	// Duplicate ClientHellos (client retransmits over lossy links) are
	// answered with the cached reply by the tagged conn's control loop.
	tc.setCtrlResponder(ch.Nonce, reply)

	conn, err := e.assemble(ctx, tc, resolved, SideServer)
	if err != nil {
		e.trace(SideServer, telemetry.TraceFailed, telemetry.TraceEvent{Detail: err.Error()})
		return nil, err
	}
	e.trace(SideServer, telemetry.TraceConnected, telemetry.TraceEvent{
		Detail: describeStack(resolved),
	})
	return conn, nil
}

// describeStack renders a resolved stack as "type=impl → type=impl" for
// trace events.
func describeStack(stack []ResolvedNode) string {
	if len(stack) == 0 {
		return "(empty stack)"
	}
	var b []byte
	for i, rn := range stack {
		if i > 0 {
			b = append(b, " → "...)
		}
		b = append(b, rn.Type...)
		b = append(b, '=')
		b = append(b, rn.ImplName...)
	}
	return string(b)
}

// assemble instantiates the local side of a resolved stack: Init then Wrap
// for every chunnel this side runs, outermost chunnel wrapped last so that
// application sends enter the stack at the top.
func (e *Endpoint) assemble(ctx context.Context, tc *taggedConn, stack []ResolvedNode, side Side) (Conn, error) {
	if e.env.Dialer() == nil {
		// Provide a same-transport dialer so chunnels can open extra
		// base connections; transports may install richer dialers.
		e.env.SetDialer(DialerFunc(func(ctx context.Context, addr Addr) (Conn, error) {
			return nil, fmt.Errorf("bertha: no dialer available for %s", addr)
		}))
	}
	// Capacity hint: sum the header overhead of every layer this side
	// will run (plus the mux tag byte) so the application can allocate
	// send buffers once, with headroom for the whole negotiated stack.
	headroom := 1 // sendTagged's tag byte
	for _, rn := range stack {
		if !rn.RunsAt(side) {
			continue
		}
		if impl, ok := e.registry.Lookup(rn.ImplName); ok {
			headroom += impl.Info().SendOverhead
		}
	}
	e.env.SetStackHeadroom(headroom)

	// When negotiation put the trace chunnel into the stack, enable the
	// per-registry span ring and publish it through the Env so the trace
	// chunnel (and any transport that wants to self-record) finds it.
	// Handles minted from a nil ring are inert, so the untraced path
	// needs no branches below.
	var spanRing *tracing.SpanRing
	if stackHasTrace(stack) {
		ringSize := tracing.DefaultRingSize
		if e.tracing != nil {
			ringSize = e.tracing.RingSize
		}
		spanRing = e.tel.EnableSpans(ringSize)
		e.env.Provide(EnvTraceRing, spanRing)
	}

	// The base of the instrumented stack: the mux data channel, recorded
	// under the pseudo-chunnel type "transport" so readouts attribute
	// wire time separately from every chunnel above it.
	data := tc.dataConn()
	baseMetrics := e.tel.Conn("transport", tc.raw.LocalAddr().Net)
	var conn Conn = InstrumentTraced(data, baseMetrics,
		spanRing.Handle("transport", tc.raw.LocalAddr().Net))
	// layerMetrics collects each instrumented layer innermost-first; the
	// managedConn derives per-hop exclusive latency (HopStats) from
	// adjacent layers' inclusive histograms.
	layerMetrics := []*telemetry.ConnMetrics{baseMetrics}
	var active []activeImpl
	// Batch-awareness bookkeeping: a SendBufs burst entering the top of
	// the stack stays vectored only while every layer on the way down
	// implements BatchConn natively; the first per-message layer breaks
	// it into a SendBuf loop. The instrumented wrappers forward the
	// vectored path transparently, so awareness is judged on the chunnel
	// connections themselves (before instrumentation), innermost first.
	_, baseAware := data.(BatchConn)
	aware := append(make([]bool, 0, len(stack)+1), baseAware)
	for i := len(stack) - 1; i >= 0; i-- {
		rn := stack[i]
		if !rn.RunsAt(side) {
			continue
		}
		impl, ok := e.registry.Lookup(rn.ImplName)
		if !ok {
			// The peer selected an implementation we cannot instantiate.
			teardownAll(ctx, active, e)
			return nil, fmt.Errorf("%w: %q not in local registry", ErrNoImplementation, rn.ImplName)
		}
		if err := impl.Init(ctx, e.env, rn.Args); err != nil {
			teardownAll(ctx, active, e)
			return nil, fmt.Errorf("bertha: init %q: %w", rn.ImplName, err)
		}
		wrapped, err := impl.Wrap(ctx, conn, rn.Args, rn.Params, side, e.env)
		if err != nil {
			impl.Teardown(ctx, e.env)
			teardownAll(ctx, active, e)
			return nil, fmt.Errorf("bertha: wrap %q: %w", rn.ImplName, err)
		}
		_, isAware := wrapped.(BatchConn)
		aware = append(aware, isAware)
		// Each resolved node gets an instrumented wrapper above it,
		// preallocated per (type, impl) pair: sends/recvs/bytes/errors
		// and inclusive latency, at zero allocations per message.
		layerM := e.tel.Conn(rn.Type, rn.ImplName)
		conn = InstrumentTraced(wrapped, layerM, spanRing.Handle(rn.Type, rn.ImplName))
		layerMetrics = append(layerMetrics, layerM)
		active = append(active, activeImpl{impl: impl, claim: rn.ClaimID})
	}
	// The vectored segment is the contiguous batch-aware run from the
	// top of the stack down: that is how deep an application burst
	// travels before degrading to per-message sends.
	vectored := 0
	for i := len(aware) - 1; i >= 0 && aware[i]; i-- {
		vectored++
	}
	e.trace(side, telemetry.TraceBatchPath, telemetry.TraceEvent{
		Detail: fmt.Sprintf("vectored %d/%d layers from the top", vectored, len(aware)),
	})
	if e.coalesce != nil {
		conn = NewCoalescer(conn, *e.coalesce, e.tel)
	}
	// The sampling decision lives at the very top of the stack (above
	// the coalescer) so every instrumented wrapper underneath sees the
	// trace context on the way down.
	if e.tracing != nil && spanRing != nil {
		conn = &samplerConn{Conn: conn, sampler: tracing.NewSampler(e.tracing.SampleRate)}
	}
	openConns := e.tel.Gauge("core/open_conns")
	openConns.Add(1)
	return &managedConn{
		Conn: conn, ep: e, side: side, active: active,
		layers: layerMetrics, openConns: openConns,
	}, nil
}

type activeImpl struct {
	impl  Impl
	claim uint64
}

func teardownAll(ctx context.Context, active []activeImpl, e *Endpoint) {
	for i := len(active) - 1; i >= 0; i-- {
		active[i].impl.Teardown(ctx, e.env)
		if active[i].claim != 0 && e.discovery != nil {
			e.discovery.Release(ctx, active[i].claim)
		}
	}
}

// teardownTimeout bounds the discovery-release RPCs a closing
// connection issues: Close has no caller context, and a dead discovery
// service must not wedge shutdown.
const teardownTimeout = 5 * time.Second

// managedConn runs implementation teardown (and resource release) when
// the connection closes.
type managedConn struct {
	Conn
	ep     *Endpoint
	side   Side
	active []activeImpl
	// layers holds each instrumented layer's metrics innermost-first
	// (base transport at index 0) — the input to HopStats.
	layers    []*telemetry.ConnMetrics
	openConns *telemetry.Gauge
	once      sync.Once
}

// HopStats derives each layer's exclusive send latency (p50/p95, µs)
// from the inclusive latency histograms of adjacent layers, folds the
// result into each layer's EWMA rollup, and returns it outermost layer
// first. A layer's inclusive latency contains every layer below it, so
// the difference against its inner neighbour isolates the layer's own
// cost; the base transport keeps its full inclusive time.
func (m *managedConn) HopStats() []HopStat {
	out := make([]HopStat, 0, len(m.layers))
	prevP50, prevP95 := 0.0, 0.0
	prevOK := false
	stats := make([]HopStat, len(m.layers))
	for i, lm := range m.layers {
		snap := lm.SendLatency.Snapshot()
		if snap.Count == 0 {
			stats[i] = HopStat{Chunnel: lm.Chunnel, Impl: lm.Impl}
			prevOK = false
			continue
		}
		p50, p95 := snap.Quantile(0.50), snap.Quantile(0.95)
		e50, e95 := p50, p95
		if prevOK {
			e50, e95 = p50-prevP50, p95-prevP95
			if e50 < 0 {
				e50 = 0
			}
			if e95 < 0 {
				e95 = 0
			}
		}
		lm.FoldHopExcl(e50, e95)
		r50, r95, _ := lm.HopExcl()
		stats[i] = HopStat{Chunnel: lm.Chunnel, Impl: lm.Impl, ExclP50: r50, ExclP95: r95}
		prevP50, prevP95, prevOK = p50, p95, true
	}
	for i := len(stats) - 1; i >= 0; i-- {
		out = append(out, stats[i])
	}
	return out
}

// SendBuf, RecvBuf, and Headroom forward the zero-copy path through the
// management wrapper (plain interface embedding would hide it).
func (m *managedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	return SendBuf(ctx, m.Conn, b)
}

func (m *managedConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return RecvBuf(ctx, m.Conn)
}

func (m *managedConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	return SendBufs(ctx, m.Conn, bs)
}

func (m *managedConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	return RecvBufs(ctx, m.Conn, into)
}

// Flush forwards to the coalescer when the endpoint coalesces sends
// (WithCoalescing); otherwise it is a no-op.
func (m *managedConn) Flush(ctx context.Context) error {
	return Flush(ctx, m.Conn)
}

func (m *managedConn) Headroom() int { return HeadroomOf(m.Conn) }

func (m *managedConn) Close() error {
	err := m.Conn.Close()
	m.once.Do(func() {
		if m.openConns != nil {
			m.openConns.Add(-1)
		}
		ctx, cancel := context.WithTimeout(context.Background(), teardownTimeout)
		defer cancel()
		teardownAll(ctx, m.active, m.ep)
		m.ep.trace(m.side, telemetry.TraceTeardown, telemetry.TraceEvent{
			Detail: fmt.Sprintf("%d impls torn down", len(m.active)),
		})
	})
	return err
}

func hostOr(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func newNonce() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("bertha: crypto/rand unavailable: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}
