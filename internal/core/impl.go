package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Location identifies where an implementation executes (Table 1 "Offload"
// vs "Fallback Impl."). Locations are ordered roughly by distance from the
// application; the default policy prefers locations closer to the wire.
type Location uint8

// Location values.
const (
	// LocUserspace is ordinary host software inside the application
	// process — every fallback implementation lives here.
	LocUserspace Location = iota
	// LocKernel is the host kernel datapath (the XDP analog).
	LocKernel
	// LocSmartNIC is an on-server NIC offload.
	LocSmartNIC
	// LocSwitch is an in-network programmable switch.
	LocSwitch
)

// String returns the location's name.
func (l Location) String() string {
	switch l {
	case LocUserspace:
		return "userspace"
	case LocKernel:
		return "kernel"
	case LocSmartNIC:
		return "smartnic"
	case LocSwitch:
		return "switch"
	default:
		return fmt.Sprintf("Location(%d)", uint8(l))
	}
}

// Offloaded reports whether the location is an accelerated (non-userspace)
// placement.
func (l Location) Offloaded() bool { return l != LocUserspace }

// AllowedBy reports whether a chunnel constrained to scope s may be placed
// at this location.
func (l Location) AllowedBy(s spec.Scope) bool {
	switch s {
	case spec.ScopeAny, spec.ScopeGlobal, spec.ScopeLocalNet:
		return true
	case spec.ScopeHost:
		return l != LocSwitch
	case spec.ScopeApplication:
		return l == LocUserspace
	default:
		return false
	}
}

// Resources describes an implementation's resource requirements (§4.2:
// implementations provide "a function that returns an implementation
// priority and set of resource requirements"). Units are abstract: the
// discovery service tracks per-offload capacity in the same units.
type Resources struct {
	// TableEntries is the number of match-action or map entries required
	// (switch tables, XDP map slots).
	TableEntries uint32
	// Bandwidth is the reserved bandwidth share in abstract units.
	Bandwidth uint32
}

// IsZero reports whether no resources are required.
func (r Resources) IsZero() bool { return r == Resources{} }

// Encode appends the resource requirements.
func (r Resources) Encode(e *wire.Encoder) {
	e.PutUvarint(uint64(r.TableEntries))
	e.PutUvarint(uint64(r.Bandwidth))
}

// DecodeResources reads resource requirements.
func DecodeResources(d *wire.Decoder) Resources {
	return Resources{
		TableEntries: uint32(d.Uvarint()),
		Bandwidth:    uint32(d.Uvarint()),
	}
}

// ImplInfo describes a chunnel implementation for registration and
// negotiation.
type ImplInfo struct {
	// Name uniquely identifies the implementation, conventionally
	// "<type>/<variant>", e.g. "shard/xdp".
	Name string
	// Type is the chunnel type implemented, e.g. "shard".
	Type string
	// Scope is the narrowest scope under which this implementation may
	// still be used; e.g. a same-host IPC implementation declares
	// ScopeHost (§4.2 "a Chunnel can only be implemented on the same host
	// as an application").
	Scope spec.Scope
	// Endpoint declares which endpoints must run this implementation
	// (§4.2, e.g. endpoints::Both for reliability).
	Endpoint spec.Endpoint
	// Priority orders candidate implementations; higher is preferred.
	// Convention: 0–9 fallback, 10–19 optimized software, 20–29 kernel
	// datapath / kernel bypass, 30+ hardware.
	Priority int
	// Location is where the implementation executes.
	Location Location
	// Resources are the requirements claimed from discovery when the
	// implementation is selected.
	Resources Resources
	// DiscoveryOnly marks implementations that are registered locally so
	// the runtime can instantiate them, but advertised exclusively
	// through the discovery service by an operator (§4.2). They are
	// omitted from the endpoint's own negotiation offers: whether a
	// connection may use them is the operator's decision, made by
	// registering (or withdrawing) the advertisement.
	DiscoveryOnly bool
	// SendOverhead is the number of header bytes this implementation
	// prepends to each message on Send. The runtime sums it over the
	// resolved stack at assembly time so the outermost layer can
	// allocate one buffer with enough headroom for every layer below
	// (Env.StackHeadroom). It is a local property of the implementation
	// and is not exchanged during negotiation.
	SendOverhead int
}

// Validate checks the descriptor for structural problems.
func (i ImplInfo) Validate() error {
	if i.Name == "" || i.Type == "" {
		return fmt.Errorf("core: impl info missing name (%q) or type (%q)", i.Name, i.Type)
	}
	if !i.Scope.Valid() {
		return fmt.Errorf("core: impl %q: invalid scope %d", i.Name, i.Scope)
	}
	if !i.Endpoint.Valid() {
		return fmt.Errorf("core: impl %q: invalid endpoint %d", i.Name, i.Endpoint)
	}
	return nil
}

// Impl is a chunnel implementation: the unit registered with the local
// registry (fallbacks) or advertised through discovery (accelerated
// variants). Implementations provide initialization and teardown functions
// that configure the system and network on the application's behalf
// (§4.2), and a Wrap function that layers the chunnel's data-plane
// behaviour over a connection.
type Impl interface {
	// Info returns the implementation descriptor.
	Info() ImplInfo
	// Init configures the system and network so the application can use
	// this implementation (the paper's analog of calling ethtool or an
	// SDN controller). It runs once per connection binding, before Wrap.
	Init(ctx context.Context, env *Env, args []wire.Value) error
	// Teardown reverses Init when the connection ends.
	Teardown(ctx context.Context, env *Env) error
	// Wrap layers the chunnel over conn for the given side. args are the
	// DAG-declared constructor arguments; params are values contributed
	// by the peer's implementation during negotiation (e.g. the server's
	// IPC address or shard addresses).
	Wrap(ctx context.Context, conn Conn, args, params []wire.Value, side Side, env *Env) (Conn, error)
}

// ArgValidator is implemented by implementations that can check a DAG
// node's arguments during negotiation, so malformed specifications fail
// the connection at establishment (and are reported to the peer) rather
// than surfacing later during stack assembly.
type ArgValidator interface {
	ValidateArgs(args []wire.Value) error
}

// ParamProvider is implemented by server-side implementations that
// contribute parameters to the client during negotiation — for example,
// the local fast-path chunnel publishes its UNIX socket path, and the
// sharding chunnel publishes shard addresses so a client-push
// implementation can dial them directly.
type ParamProvider interface {
	NegotiateParams(ctx context.Context, env *Env, args []wire.Value) ([]wire.Value, error)
}

// MultiWrapper is implemented by chunnels that operate over connections to
// several peers at once (ordered multicast, Listing 2: "the argument
// passed into connect is a vector containing endpoint addresses").
type MultiWrapper interface {
	WrapMulti(ctx context.Context, conns []Conn, args, params []wire.Value, side Side, env *Env) (Conn, error)
}

// ConfigAction records one system- or network-configuration step performed
// by an implementation's Init or Teardown. The log substitutes for the
// paper's ethtool/SDN-controller calls and makes "Bertha updates system
// and network configuration" testable.
type ConfigAction struct {
	// Target names the configured component, e.g. "xdp:eth0" or
	// "switch:tor1".
	Target string
	// Action describes the step, e.g. "attach-program" or "add-route".
	Action string
	// Detail carries free-form parameters.
	Detail string
}

// String renders the action.
func (c ConfigAction) String() string {
	return fmt.Sprintf("%s: %s (%s)", c.Target, c.Action, c.Detail)
}

// Env is the execution environment handed to implementations: host
// identity, a dialer for opening additional base connections, named
// attachment points (XDP hooks, switch pipelines, IPC listeners), and the
// configuration log.
//
// An Env is scoped to one endpoint (one application process on one host).
// It is safe for concurrent use.
type Env struct {
	// Host is this endpoint's host identity (matches Addr.Host).
	Host string

	mu        sync.Mutex
	dialer    Dialer
	resources map[string]any
	log       []ConfigAction
	headroom  int
}

// NewEnv returns an Env for the given host identity.
func NewEnv(host string) *Env {
	return &Env{Host: host, resources: make(map[string]any)}
}

// SetDialer installs the dialer implementations use to open additional
// base-transport connections.
func (e *Env) SetDialer(d Dialer) {
	e.mu.Lock()
	e.dialer = d
	e.mu.Unlock()
}

// Dialer returns the installed dialer, or nil.
func (e *Env) Dialer() Dialer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dialer
}

// Provide publishes a named attachment point or capability — for example
// an XDP hook ("xdp:rx"), a switch pipeline handle ("switch:tor"), or a
// server's extra listener.
func (e *Env) Provide(name string, v any) {
	e.mu.Lock()
	e.resources[name] = v
	e.mu.Unlock()
}

// Lookup fetches a named attachment point.
func (e *Env) Lookup(name string) (any, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.resources[name]
	return v, ok
}

// SetStackHeadroom records the total send headroom (summed chunnel
// SendOverhead) of the most recently assembled stack. The runtime calls
// this during stack assembly.
func (e *Env) SetStackHeadroom(n int) {
	e.mu.Lock()
	e.headroom = n
	e.mu.Unlock()
}

// StackHeadroom returns the capacity hint recorded by the last stack
// assembly: the headroom an application (or outermost chunnel) should
// reserve in buffers it sends so no layer below reallocates. Returns 0
// when no stack has been assembled through this Env.
func (e *Env) StackHeadroom() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.headroom
}

// Configure appends a configuration action to the log.
func (e *Env) Configure(target, action, detail string) {
	e.mu.Lock()
	e.log = append(e.log, ConfigAction{Target: target, Action: action, Detail: detail})
	e.mu.Unlock()
}

// ConfigLog returns a copy of the configuration actions applied so far.
func (e *Env) ConfigLog() []ConfigAction {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]ConfigAction(nil), e.log...)
}
