package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// fakeImpl is a minimal chunnel implementation for registry and
// negotiation-decision tests.
type fakeImpl struct {
	info   ImplInfo
	params []wire.Value
	inits  int
	tears  int
}

func (f *fakeImpl) Info() ImplInfo { return f.info }
func (f *fakeImpl) Init(ctx context.Context, env *Env, args []wire.Value) error {
	f.inits++
	return nil
}
func (f *fakeImpl) Teardown(ctx context.Context, env *Env) error {
	f.tears++
	return nil
}
func (f *fakeImpl) Wrap(ctx context.Context, conn Conn, args, params []wire.Value, side Side, env *Env) (Conn, error) {
	return conn, nil
}

type fakeParamImpl struct {
	fakeImpl
	params []wire.Value
}

func (f *fakeParamImpl) NegotiateParams(ctx context.Context, env *Env, args []wire.Value) ([]wire.Value, error) {
	return f.params, nil
}

func mkImpl(name, typ string, prio int, loc Location, ep spec.Endpoint) *fakeImpl {
	return &fakeImpl{info: ImplInfo{Name: name, Type: typ, Priority: prio, Location: loc, Endpoint: ep}}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	a := mkImpl("x/fallback", "x", 0, LocUserspace, spec.EndpointBoth)
	b := mkImpl("x/xdp", "x", 20, LocKernel, spec.EndpointServer)
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(&fakeImpl{info: ImplInfo{Name: "", Type: "y"}}); err == nil {
		t.Error("empty name should fail validation")
	}
	if err := r.Register(&fakeImpl{info: ImplInfo{Name: "bad/scope", Type: "y", Scope: spec.Scope(99)}}); err == nil {
		t.Error("invalid scope should fail validation")
	}
	got, ok := r.Lookup("x/xdp")
	if !ok || got != Impl(b) {
		t.Error("lookup")
	}
	impls := r.ImplsFor("x")
	if len(impls) != 2 || impls[0].Info().Name != "x/xdp" {
		t.Errorf("ImplsFor order: %v", implNames(impls))
	}
	if types := r.Types(); len(types) != 1 || types[0] != "x" {
		t.Errorf("Types: %v", types)
	}
}

func implNames(impls []Impl) []string {
	var out []string
	for _, i := range impls {
		out = append(out, i.Info().Name)
	}
	return out
}

func TestRegistryFallbackEnforcement(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(mkImpl("x/xdp", "x", 20, LocKernel, spec.EndpointServer))
	if _, err := r.Fallback("x"); !errors.Is(err, ErrNoFallback) {
		t.Errorf("kernel-only type should lack fallback: %v", err)
	}
	r.MustRegister(mkImpl("x/fb", "x", 0, LocUserspace, spec.EndpointBoth))
	fb, err := r.Fallback("x")
	if err != nil || fb.Info().Name != "x/fb" {
		t.Errorf("fallback: %v %v", fb, err)
	}
	if err := r.CheckFallbacks(spec.Seq(spec.New("x"), spec.New("missing"))); !errors.Is(err, ErrNoFallback) {
		t.Errorf("CheckFallbacks: %v", err)
	}
}

func TestOfferCodecRoundTrip(t *testing.T) {
	offers := []ImplOffer{
		{Name: "shard/xdp", Type: "shard", Scope: spec.ScopeHost, Endpoint: spec.EndpointServer,
			Priority: 20, Location: LocKernel, Resources: Resources{TableEntries: 16, Bandwidth: 2}, Host: "h1"},
		{Name: "reliable/arq", Type: "reliable", Endpoint: spec.EndpointBoth},
	}
	e := wire.NewEncoder(nil)
	EncodeOffers(e, offers)
	d := wire.NewDecoder(e.Bytes())
	got := DecodeOffers(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != offers[0] || got[1] != offers[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestHelloCodecs(t *testing.T) {
	ch := &ClientHello{
		Nonce: 0xDEAD,
		Name:  "cli",
		Host:  "h1",
		Spec:  spec.Seq(spec.New("reliable")),
		Offers: []ImplOffer{
			{Name: "reliable/arq", Type: "reliable", Endpoint: spec.EndpointBoth},
		},
	}
	e := wire.NewEncoder(nil)
	ch.Encode(e)
	d := wire.NewDecoder(e.Bytes())
	if mt := d.Uint8(); mt != msgClientHello {
		t.Fatalf("message type %d", mt)
	}
	got, err := DecodeClientHello(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nonce != ch.Nonce || got.Name != ch.Name || got.Host != ch.Host || !got.Spec.Equal(ch.Spec) || len(got.Offers) != 1 {
		t.Errorf("client hello round trip: %+v", got)
	}

	sh := &ServerHello{
		Nonce: 1, Name: "srv", Host: "h2",
		Stack: []ResolvedNode{{
			Type: "reliable", Args: []wire.Value{wire.Int(3)}, ImplName: "reliable/arq",
			Endpoint: spec.EndpointBoth, Owner: SideServer, Location: LocUserspace,
			Params: []wire.Value{wire.Str("p")},
		}},
	}
	e.Reset()
	sh.Encode(e)
	d = wire.NewDecoder(e.Bytes())
	if mt := d.Uint8(); mt != msgServerHello {
		t.Fatalf("message type %d", mt)
	}
	gsh, err := DecodeServerHello(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(gsh.Stack) != 1 {
		t.Fatalf("stack: %+v", gsh.Stack)
	}
	rn := gsh.Stack[0]
	if rn.Type != "reliable" || rn.ImplName != "reliable/arq" || rn.Endpoint != spec.EndpointBoth ||
		len(rn.Args) != 1 || len(rn.Params) != 1 {
		t.Errorf("resolved node: %+v", rn)
	}
}

func TestHelloVersionMismatch(t *testing.T) {
	e := wire.NewEncoder(nil)
	e.PutUint8(99) // bogus version
	e.PutUint64(0)
	d := wire.NewDecoder(e.Bytes())
	if _, err := DecodeClientHello(d); !errors.Is(err, ErrNegotiation) {
		t.Errorf("version mismatch: %v", err)
	}
}

func TestMergeSpecs(t *testing.T) {
	a := spec.Seq(spec.New("x"))
	b := spec.Seq(spec.New("y"))
	if got, err := mergeSpecs(spec.Seq(), a); err != nil || !got.Equal(a) {
		t.Errorf("empty client inherits server: %v %v", got, err)
	}
	if got, err := mergeSpecs(a, spec.Seq()); err != nil || !got.Equal(a) {
		t.Errorf("empty server inherits client: %v %v", got, err)
	}
	if got, err := mergeSpecs(a, a.Clone()); err != nil || !got.Equal(a) {
		t.Errorf("equal specs: %v %v", got, err)
	}
	if _, err := mergeSpecs(a, b); !errors.Is(err, ErrIncompatibleSpecs) {
		t.Errorf("conflicting specs: %v", err)
	}
}

func TestDefaultPolicyRanking(t *testing.T) {
	node := spec.New("x")
	cands := []Candidate{
		{Offer: ImplOffer{Name: "x/srv", Type: "x", Priority: 30, Location: LocSwitch}, From: SideServer},
		{Offer: ImplOffer{Name: "x/cli", Type: "x", Priority: 0, Location: LocUserspace}, From: SideClient},
	}
	got, err := DefaultPolicy(node, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got.Offer.Name != "x/cli" {
		t.Errorf("client impl must win over server impl: %s", got.Offer.Name)
	}

	// Same side: higher priority wins.
	cands = []Candidate{
		{Offer: ImplOffer{Name: "x/a", Type: "x", Priority: 5}, From: SideServer},
		{Offer: ImplOffer{Name: "x/b", Type: "x", Priority: 20}, From: SideServer},
	}
	got, _ = DefaultPolicy(node, cands)
	if got.Offer.Name != "x/b" {
		t.Errorf("priority: %s", got.Offer.Name)
	}

	// Same priority: offloaded location wins.
	cands = []Candidate{
		{Offer: ImplOffer{Name: "x/a", Type: "x", Priority: 5, Location: LocUserspace}, From: SideServer},
		{Offer: ImplOffer{Name: "x/b", Type: "x", Priority: 5, Location: LocKernel}, From: SideServer},
	}
	got, _ = DefaultPolicy(node, cands)
	if got.Offer.Name != "x/b" {
		t.Errorf("location: %s", got.Offer.Name)
	}

	// Full tie: lexicographic name, deterministic.
	cands = []Candidate{
		{Offer: ImplOffer{Name: "x/b", Type: "x"}, From: SideServer},
		{Offer: ImplOffer{Name: "x/a", Type: "x"}, From: SideServer},
	}
	got, _ = DefaultPolicy(node, cands)
	if got.Offer.Name != "x/a" {
		t.Errorf("name tiebreak: %s", got.Offer.Name)
	}

	if _, err := DefaultPolicy(node, nil); !errors.Is(err, ErrNoImplementation) {
		t.Errorf("no candidates: %v", err)
	}
}

func TestPolicyCombinators(t *testing.T) {
	node := spec.New("x")
	cands := []Candidate{
		{Offer: ImplOffer{Name: "x/fb", Type: "x", Priority: 0, Location: LocUserspace}, From: SideServer},
		{Offer: ImplOffer{Name: "x/xdp", Type: "x", Priority: 20, Location: LocKernel}, From: SideServer},
	}
	if got, _ := PreferLocation(LocUserspace)(node, cands); got.Offer.Name != "x/fb" {
		t.Errorf("PreferLocation: %s", got.Offer.Name)
	}
	if got, _ := PreferLocation(LocSwitch)(node, cands); got.Offer.Name != "x/xdp" {
		t.Errorf("PreferLocation fallback to default: %s", got.Offer.Name)
	}
	if got, _ := PreferImpl("x/fb")(node, cands); got.Offer.Name != "x/fb" {
		t.Errorf("PreferImpl: %s", got.Offer.Name)
	}
	if got, _ := PreferImpl("nope")(node, cands); got.Offer.Name != "x/xdp" {
		t.Errorf("PreferImpl fallback: %s", got.Offer.Name)
	}
	mixed := append(cands, Candidate{Offer: ImplOffer{Name: "x/cli", Type: "x", Priority: 1}, From: SideClient})
	if got, _ := PreferSide(SideServer)(node, mixed); got.From != SideServer {
		t.Errorf("PreferSide: %+v", got)
	}
}

func TestLocationScopeMatrix(t *testing.T) {
	cases := []struct {
		loc   Location
		scope spec.Scope
		want  bool
	}{
		{LocUserspace, spec.ScopeApplication, true},
		{LocKernel, spec.ScopeApplication, false},
		{LocKernel, spec.ScopeHost, true},
		{LocSmartNIC, spec.ScopeHost, true},
		{LocSwitch, spec.ScopeHost, false},
		{LocSwitch, spec.ScopeLocalNet, true},
		{LocSwitch, spec.ScopeGlobal, true},
		{LocSwitch, spec.ScopeAny, true},
	}
	for _, c := range cases {
		if got := c.loc.AllowedBy(c.scope); got != c.want {
			t.Errorf("%s allowed by %s: got %t want %t", c.loc, c.scope, got, c.want)
		}
	}
}

func TestResolveSelectsDefault(t *testing.T) {
	r := NewRegistry()
	s := spec.Seq(spec.Select("pick", nil,
		spec.Seq(spec.New("unavailable")),
		spec.Seq(spec.New("present"), spec.New("alsopresent")),
	))
	sctx := SelectContext{Available: func(t string) bool { return strings.Contains(t, "present") }}
	nodes, err := resolveSelects(s, r, sctx)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(nodes) != "present |> alsopresent" {
		t.Errorf("resolved: %s", Describe(nodes))
	}

	// No branch available: error.
	sctx.Available = func(string) bool { return false }
	if _, err := resolveSelects(s, r, sctx); !errors.Is(err, ErrNoImplementation) {
		t.Errorf("no branch: %v", err)
	}
}

func TestResolveSelectsCustomResolver(t *testing.T) {
	r := NewRegistry()
	r.RegisterResolver("localfast", func(args []wire.Value, branches []*spec.Stack, sctx SelectContext) (int, error) {
		if sctx.ClientHost == sctx.ServerHost {
			return 0, nil
		}
		return 1, nil
	})
	s := spec.Seq(spec.Select("localfast", nil,
		spec.Seq(spec.New("ipc")),
		spec.Seq(spec.New("net")),
	))
	sctx := SelectContext{ClientHost: "h1", ServerHost: "h1", Available: func(string) bool { return true }}
	nodes, _ := resolveSelects(s, r, sctx)
	if Describe(nodes) != "ipc" {
		t.Errorf("same host: %s", Describe(nodes))
	}
	sctx.ServerHost = "h2"
	nodes, _ = resolveSelects(s, r, sctx)
	if Describe(nodes) != "net" {
		t.Errorf("cross host: %s", Describe(nodes))
	}
}

func TestResolveSelectsNested(t *testing.T) {
	r := NewRegistry()
	inner := spec.Select("in", nil, spec.Seq(spec.New("a")), spec.Seq(spec.New("b")))
	s := spec.Seq(spec.Select("out", nil, spec.Seq(inner, spec.New("c"))))
	sctx := SelectContext{Available: func(t string) bool { return t != "a" }}
	nodes, err := resolveSelects(s, r, sctx)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(nodes) != "b |> c" {
		t.Errorf("nested: %s", Describe(nodes))
	}
}

func TestOptimizerEliminate(t *testing.T) {
	r := NewRegistry()
	r.SetTypeMeta("compress", TypeMeta{Idempotent: true})
	o := NewOptimizer(r)
	nodes := []spec.Node{
		spec.New("compress", wire.Int(1)),
		spec.New("compress", wire.Int(1)),
		spec.New("compress", wire.Int(2)), // different args: keep
		spec.New("reliable"),
		spec.New("reliable"), // not idempotent: keep
	}
	got, err := o.Apply(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(got) != "compress |> compress |> reliable |> reliable" {
		t.Errorf("eliminate: %s", Describe(got))
	}
}

func TestOptimizerReorderSection6Example(t *testing.T) {
	// encrypt |> http2 |> tcp with a SmartNIC offering encrypt and tcp:
	// reorder to http2 |> encrypt |> tcp (§6).
	r := NewRegistry()
	r.SetTypeMeta("encrypt", TypeMeta{Commutes: []string{"http2"}})
	o := NewOptimizer(r)
	cands := map[string][]Candidate{
		"encrypt": {{Offer: ImplOffer{Name: "encrypt/nic", Type: "encrypt", Location: LocSmartNIC}}},
		"http2":   {{Offer: ImplOffer{Name: "http2/sw", Type: "http2", Location: LocUserspace}}},
		"tcp":     {{Offer: ImplOffer{Name: "tcp/nic", Type: "tcp", Location: LocSmartNIC}}},
	}
	nodes := []spec.Node{spec.New("encrypt"), spec.New("http2"), spec.New("tcp")}
	got, err := o.Apply(nodes, cands)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(got) != "http2 |> encrypt |> tcp" {
		t.Errorf("reorder: %s", Describe(got))
	}

	// Without commutativity metadata, no reorder happens.
	r2 := NewRegistry()
	o2 := NewOptimizer(r2)
	got2, _ := o2.Apply(nodes, cands)
	if Describe(got2) != "encrypt |> http2 |> tcp" {
		t.Errorf("no-commute reorder: %s", Describe(got2))
	}

	// Scope-pinned nodes are never moved.
	r3 := NewRegistry()
	r3.SetTypeMeta("encrypt", TypeMeta{Commutes: []string{"http2"}})
	o3 := NewOptimizer(r3)
	pinned := []spec.Node{spec.New("encrypt").WithScope(spec.ScopeApplication), spec.New("http2"), spec.New("tcp")}
	got3, _ := o3.Apply(pinned, cands)
	if Describe(got3) != "encrypt |> http2 |> tcp" {
		t.Errorf("pinned reorder: %s", Describe(got3))
	}
}

func TestOptimizerMergeTLSFusion(t *testing.T) {
	// §6: NIC offers TLS but not separate encrypt/tcp — reorder then merge.
	r := NewRegistry()
	r.SetTypeMeta("encrypt", TypeMeta{Commutes: []string{"http2"}})
	r.AddFusion("encrypt", "tcp", "tls")
	o := NewOptimizer(r)
	cands := map[string][]Candidate{
		"encrypt": {{Offer: ImplOffer{Name: "encrypt/sw", Type: "encrypt", Location: LocSmartNIC}}},
		"http2":   {{Offer: ImplOffer{Name: "http2/sw", Type: "http2", Location: LocUserspace}}},
		"tcp":     {{Offer: ImplOffer{Name: "tcp/sw", Type: "tcp", Location: LocSmartNIC}}},
		"tls":     {{Offer: ImplOffer{Name: "tls/nic", Type: "tls", Location: LocSmartNIC}}},
	}
	nodes := []spec.Node{spec.New("encrypt", wire.Str("k")), spec.New("http2"), spec.New("tcp", wire.Int(1))}
	got, err := o.Apply(nodes, cands)
	if err != nil {
		t.Fatal(err)
	}
	if Describe(got) != "http2 |> tls" {
		t.Fatalf("merge: %s", Describe(got))
	}
	// Fused node inherits both arg lists.
	if len(got[1].Args) != 2 {
		t.Errorf("fused args: %v", got[1].Args)
	}

	// Without a tls candidate, no merge.
	delete(cands, "tls")
	got2, _ := o.Apply(nodes, cands)
	if Describe(got2) != "http2 |> encrypt |> tcp" {
		t.Errorf("merge without candidate: %s", Describe(got2))
	}
}

func TestDataPathCost(t *testing.T) {
	// §6 example: encrypt(NIC) -> http2(CPU) -> tcp(NIC): 3 crossings.
	before := []Location{LocSmartNIC, LocUserspace, LocSmartNIC}
	if got := DataPathCost(before); got != 3 {
		t.Errorf("before: %d", got)
	}
	// After reorder: http2(CPU) -> encrypt(NIC) -> tcp(NIC): 1 crossing.
	after := []Location{LocUserspace, LocSmartNIC, LocSmartNIC}
	if got := DataPathCost(after); got != 1 {
		t.Errorf("after: %d", got)
	}
	// All userspace: just the final NIC hop.
	if got := DataPathCost([]Location{LocUserspace, LocKernel}); got != 1 {
		t.Errorf("userspace: %d", got)
	}
	if got := DataPathCost(nil); got != 1 {
		t.Errorf("empty: %d", got)
	}
}

func TestCandidateUsableFor(t *testing.T) {
	node := spec.New("x").WithScope(spec.ScopeHost)
	c := Candidate{Offer: ImplOffer{Name: "x/sw", Type: "x", Location: LocSwitch}}
	if c.usableFor(node, "h1", "h2") {
		t.Error("switch impl must not satisfy host scope")
	}
	c.Offer.Location = LocSmartNIC
	if !c.usableFor(node, "h1", "h2") {
		t.Error("smartnic impl satisfies host scope")
	}
	// Discovered host-pinned offload requires host match.
	c = Candidate{Offer: ImplOffer{Name: "x/nic", Type: "x", Location: LocSmartNIC, Host: "h3"}, Discovered: true}
	if c.usableFor(spec.New("x"), "h1", "h2") {
		t.Error("offload on unrelated host must be filtered")
	}
	c.Offer.Host = "h1"
	if !c.usableFor(spec.New("x"), "h1", "h2") {
		t.Error("offload on client host is usable")
	}
	// Switches are in-network: no host match needed.
	c = Candidate{Offer: ImplOffer{Name: "x/sw", Type: "x", Location: LocSwitch, Host: "tor1"}, Discovered: true}
	if !c.usableFor(spec.New("x"), "h1", "h2") {
		t.Error("switch offload usable regardless of host")
	}
}

func TestEnvConfigLogAndResources(t *testing.T) {
	env := NewEnv("h1")
	env.Configure("xdp:eth0", "attach", "shard-prog")
	env.Configure("xdp:eth0", "detach", "shard-prog")
	log := env.ConfigLog()
	if len(log) != 2 || log[0].Action != "attach" || log[1].Action != "detach" {
		t.Errorf("config log: %v", log)
	}
	if !strings.Contains(log[0].String(), "xdp:eth0") {
		t.Errorf("action string: %s", log[0])
	}
	env.Provide("hook", 42)
	if v, ok := env.Lookup("hook"); !ok || v != 42 {
		t.Error("provide/lookup")
	}
	if _, ok := env.Lookup("missing"); ok {
		t.Error("missing lookup")
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr{Net: "udp", Host: "h1", Addr: "1.2.3.4:5"}
	b := Addr{Net: "unix", Host: "h1", Addr: "/tmp/x"}
	c := Addr{Net: "udp", Host: "h2", Addr: "1.2.3.4:5"}
	if !a.SameHost(b) || a.SameHost(c) {
		t.Error("SameHost")
	}
	var zero Addr
	if zero.SameHost(zero) {
		t.Error("unknown hosts are never local")
	}
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero")
	}
	if a.String() != "udp://h1/1.2.3.4:5" {
		t.Errorf("String: %s", a)
	}
	if SideClient.String() != "client" || SideServer.String() != "server" {
		t.Error("side names")
	}
	for l := LocUserspace; l <= LocSwitch; l++ {
		if strings.HasPrefix(l.String(), "Location(") {
			t.Errorf("location %d missing name", l)
		}
	}
	if LocUserspace.Offloaded() || !LocSwitch.Offloaded() {
		t.Error("Offloaded")
	}
}

func TestRequireAttestationPolicy(t *testing.T) {
	node := spec.New("x")
	local := Candidate{Offer: ImplOffer{Name: "x/fb", Type: "x"}, From: SideServer}
	attested := Candidate{
		Offer:      ImplOffer{Name: "x/sw", Type: "x", Priority: 30, Meta: AttestationPrefix + "abc123"},
		From:       SideServer,
		Discovered: true,
	}
	unattested := Candidate{
		Offer:      ImplOffer{Name: "x/rogue", Type: "x", Priority: 40},
		From:       SideServer,
		Discovered: true,
	}
	trusted := map[string]bool{"abc123": true}
	p := RequireAttestation(trusted, nil)

	// The rogue (higher-priority, unattested) offer must lose to the
	// trusted attested one.
	got, err := p(node, []Candidate{local, attested, unattested})
	if err != nil || got.Offer.Name != "x/sw" {
		t.Errorf("attested selection: %+v %v", got, err)
	}
	// With no trusted digests, only local impls remain eligible.
	p2 := RequireAttestation(nil, nil)
	got, err = p2(node, []Candidate{local, attested, unattested})
	if err != nil || got.Offer.Name != "x/fb" {
		t.Errorf("untrusted fallback: %+v %v", got, err)
	}
	// Attestation accessor.
	if d, ok := attested.Offer.Attestation(); !ok || d != "abc123" {
		t.Errorf("Attestation(): %q %t", d, ok)
	}
	if _, ok := local.Offer.Attestation(); ok {
		t.Error("missing attestation should report false")
	}
}
