package core

import (
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// ImplOffer is the wire-encodable advertisement of one chunnel
// implementation, exchanged in negotiation hellos and stored by the
// discovery service. It is the subset of ImplInfo a remote endpoint needs
// to rank candidates.
type ImplOffer struct {
	Name      string
	Type      string
	Scope     spec.Scope
	Endpoint  spec.Endpoint
	Priority  int
	Location  Location
	Resources Resources
	// Host is the host the implementation is bound to ("" when the
	// implementation is wherever the registering endpoint is). Discovery
	// uses it to filter host-scoped offloads.
	Host string
	// Meta carries implementation-defined metadata (e.g. the instance
	// address for anycast service advertisements, or an offload firmware
	// version). Negotiation treats it as opaque.
	Meta string
}

// OfferFromInfo converts a registry descriptor into an advertisement.
func OfferFromInfo(i ImplInfo) ImplOffer {
	return ImplOffer{
		Name:      i.Name,
		Type:      i.Type,
		Scope:     i.Scope,
		Endpoint:  i.Endpoint,
		Priority:  i.Priority,
		Location:  i.Location,
		Resources: i.Resources,
	}
}

// Encode appends the offer.
func (o ImplOffer) Encode(e *wire.Encoder) {
	e.PutString(o.Name)
	e.PutString(o.Type)
	e.PutUint8(uint8(o.Scope))
	e.PutUint8(uint8(o.Endpoint))
	e.PutVarint(int64(o.Priority))
	e.PutUint8(uint8(o.Location))
	o.Resources.Encode(e)
	e.PutString(o.Host)
	e.PutString(o.Meta)
}

// DecodeOffer reads one offer.
func DecodeOffer(d *wire.Decoder) ImplOffer {
	return ImplOffer{
		Name:      d.String(),
		Type:      d.String(),
		Scope:     spec.Scope(d.Uint8()),
		Endpoint:  spec.Endpoint(d.Uint8()),
		Priority:  int(d.Varint()),
		Location:  Location(d.Uint8()),
		Resources: DecodeResources(d),
		Host:      d.String(),
		Meta:      d.String(),
	}
}

// EncodeOffers appends a length-prefixed offer list.
func EncodeOffers(e *wire.Encoder, offers []ImplOffer) {
	e.PutLen(len(offers))
	for _, o := range offers {
		o.Encode(e)
	}
}

// DecodeOffers reads a length-prefixed offer list.
func DecodeOffers(d *wire.Decoder) []ImplOffer {
	n := d.Len()
	if d.Err() != nil {
		return nil
	}
	out := make([]ImplOffer, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DecodeOffer(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// Candidate pairs an offer with its origin for policy ranking: which side
// of the connection advertised it (or whether it came from discovery).
type Candidate struct {
	Offer ImplOffer
	// From is the endpoint that can instantiate the implementation.
	From Side
	// Discovered marks offers obtained from the discovery service rather
	// than an endpoint's local registry.
	Discovered bool
}

// usableFor reports whether the candidate satisfies a node's scope
// constraint and, for host-scoped offloads from discovery, host locality.
func (c Candidate) usableFor(node spec.Node, clientHost, serverHost string) bool {
	if node.Scope != spec.ScopeAny && !c.Offer.Location.AllowedBy(node.Scope) {
		return false
	}
	// A discovered offload pinned to a host is usable only when one of
	// the connection's endpoints is on that host (on-server offloads) or
	// when it is an in-network device (switch scope).
	if c.Discovered && c.Offer.Host != "" && c.Offer.Location != LocSwitch {
		if c.Offer.Host != clientHost && c.Offer.Host != serverHost {
			return false
		}
	}
	return true
}
