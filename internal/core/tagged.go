package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/wire"
)

// taggedConn multiplexes negotiation control messages and application data
// over one base connection by prefixing each datagram with a one-byte
// channel tag. It also answers duplicate ClientHellos (retransmitted over
// lossy transports) with the cached ServerHello so the handshake is
// idempotent.
type taggedConn struct {
	raw Conn

	mu        sync.Mutex
	earlyData [][]byte // data messages that arrived during the handshake

	ctrlMu    sync.Mutex
	ctrlNonce uint64
	ctrlReply []byte

	peerClosed chan struct{}
	closeOnce  sync.Once
}

func newTaggedConn(raw Conn) *taggedConn {
	return &taggedConn{raw: raw, peerClosed: make(chan struct{})}
}

// markPeerClosed records that the peer tore the connection down (an
// explicit close message, or a foreign handshake from a reused address).
func (t *taggedConn) markPeerClosed() {
	t.closeOnce.Do(func() { close(t.peerClosed) })
}

func (t *taggedConn) isPeerClosed() bool {
	select {
	case <-t.peerClosed:
		return true
	default:
		return false
	}
}

// sendTagged transmits one message on the given channel. p is copied
// into a pooled buffer; hot-path senders use sendTaggedBuf instead.
func (t *taggedConn) sendTagged(ctx context.Context, tag byte, p []byte) error {
	return t.sendTaggedBuf(ctx, tag, wire.NewBufFrom(1, p))
}

// sendTaggedBuf prepends the channel tag into b's headroom and passes it
// down, consuming b.
func (t *taggedConn) sendTaggedBuf(ctx context.Context, tag byte, b *wire.Buf) error {
	b.Prepend(1)[0] = tag
	return SendBuf(ctx, t.raw, b)
}

// recvTaggedBuf receives the next message as an owned buffer with the
// channel tag already trimmed off.
func (t *taggedConn) recvTaggedBuf(ctx context.Context) (byte, *wire.Buf, error) {
	b, err := RecvBuf(ctx, t.raw)
	if err != nil {
		return 0, nil, err
	}
	if b.Len() == 0 {
		b.Release()
		return 0, nil, fmt.Errorf("bertha: empty datagram on tagged connection")
	}
	tag := b.Bytes()[0]
	b.TrimFront(1)
	return tag, b, nil
}

// recvTagged receives the next message and its tag as a plain slice
// owned by the caller (control messages are decoded with aliasing, so
// they must not share pooled backing storage).
func (t *taggedConn) recvTagged(ctx context.Context) (byte, []byte, error) {
	tag, b, err := t.recvTaggedBuf(ctx)
	if err != nil {
		return 0, nil, err
	}
	return tag, b.CopyOut(), nil
}

// recvCtrl returns the next control message, buffering any data messages
// that arrive first (possible when the peer finished its handshake and
// started sending data before our control read).
func (t *taggedConn) recvCtrl(ctx context.Context) ([]byte, error) {
	for {
		tag, p, err := t.recvTagged(ctx)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagCtrl:
			return p, nil
		case tagData:
			t.mu.Lock()
			t.earlyData = append(t.earlyData, p)
			t.mu.Unlock()
		default:
			// Unknown tag: drop (forward compatibility).
		}
	}
}

// setCtrlResponder caches the ServerHello to replay when a duplicate
// ClientHello with the given nonce arrives after the handshake.
func (t *taggedConn) setCtrlResponder(nonce uint64, reply []byte) {
	t.ctrlMu.Lock()
	t.ctrlNonce = nonce
	t.ctrlReply = reply
	t.ctrlMu.Unlock()
}

// dataConn returns the Conn the negotiated chunnel stack wraps: Send adds
// the data tag; Recv drains handshake-era buffered data first, then
// delivers data messages, replaying the cached ServerHello for duplicate
// hellos.
func (t *taggedConn) dataConn() Conn {
	return &taggedDataConn{t: t}
}

type taggedDataConn struct {
	t *taggedConn
}

func (c *taggedDataConn) Send(ctx context.Context, p []byte) error {
	return c.t.sendTagged(ctx, tagData, p)
}

// SendBuf prepends the data tag into b's headroom — the zero-copy entry
// into the mux layer.
func (c *taggedDataConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	return c.t.sendTaggedBuf(ctx, tagData, b)
}

// SendBufs stamps the data tag onto every message in one pass, then
// hands the whole burst to the base transport.
func (c *taggedDataConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		b.Prepend(1)[0] = tagData
	}
	return SendBufs(ctx, c.t.raw, bs)
}

// Headroom is the tag byte plus whatever the base transport wants.
func (c *taggedDataConn) Headroom() int { return 1 + HeadroomOf(c.t.raw) }

func (c *taggedDataConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf returns the next data message, handling interleaved control
// traffic (ServerHello replays, close announcements) in place.
func (c *taggedDataConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	c.t.mu.Lock()
	if len(c.t.earlyData) > 0 {
		p := c.t.earlyData[0]
		c.t.earlyData = c.t.earlyData[1:]
		c.t.mu.Unlock()
		return wire.WrapBuf(p), nil
	}
	c.t.mu.Unlock()
	if c.t.isPeerClosed() {
		return nil, ErrClosed
	}
	for {
		tag, b, err := c.t.recvTaggedBuf(ctx)
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagData:
			return b, nil
		case tagCtrl:
			closed := c.t.handleLateCtrl(ctx, b.Bytes())
			b.Release() // handleLateCtrl does not retain the message
			if closed {
				return nil, ErrClosed
			}
		default:
			b.Release() // unknown tag: drop (forward compatibility)
		}
	}
}

// RecvBufs drains a burst of data messages, demultiplexing the channel
// tags in one pass: control traffic is handled in place (as in RecvBuf)
// and data messages compact into into's prefix. Handshake-era buffered
// data is delivered first, one message per call (it predates the batch
// path and is already unpooled).
func (c *taggedDataConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	c.t.mu.Lock()
	if len(c.t.earlyData) > 0 {
		p := c.t.earlyData[0]
		c.t.earlyData = c.t.earlyData[1:]
		c.t.mu.Unlock()
		into[0] = wire.WrapBuf(p)
		return 1, nil
	}
	c.t.mu.Unlock()
	if c.t.isPeerClosed() {
		return 0, ErrClosed
	}
	for {
		n, err := RecvBufs(ctx, c.t.raw, into)
		if err != nil {
			return 0, err
		}
		out := 0
		closed := false
		for i := 0; i < n; i++ {
			b := into[i]
			if b.Len() == 0 {
				b.Release() // empty datagram: cannot carry a tag, drop
				continue
			}
			tag := b.Bytes()[0]
			b.TrimFront(1)
			switch tag {
			case tagData:
				if closed {
					b.Release() // data after an observed close: drop
					continue
				}
				into[out] = b
				out++
			case tagCtrl:
				closed = c.t.handleLateCtrl(ctx, b.Bytes()) || closed
				b.Release() // handleLateCtrl does not retain the message
			default:
				b.Release() // unknown tag: drop (forward compatibility)
			}
		}
		if out > 0 {
			return out, nil
		}
		if closed {
			return 0, ErrClosed
		}
	}
}

// handleLateCtrl processes a control message on an established
// connection: replay the cached ServerHello for retransmitted hellos of
// this connection, and treat an explicit close — or a hello from a
// *different* connection attempt (datagram source address reuse) — as
// the peer tearing this connection down. It reports whether the
// connection is now closed.
func (t *taggedConn) handleLateCtrl(ctx context.Context, msg []byte) bool {
	if len(msg) == 0 {
		return false
	}
	switch msg[0] {
	case msgClose:
		// Close the base connection too: on demultiplexing datagram
		// transports this releases the per-address peer entry, so a new
		// connection from a reused source address starts fresh.
		t.markPeerClosed()
		t.raw.Close()
		return true
	case msgClientHello:
		t.ctrlMu.Lock()
		nonce, reply := t.ctrlNonce, t.ctrlReply
		t.ctrlMu.Unlock()
		if reply == nil {
			return false
		}
		// The nonce sits right after [type, version] in the encoding.
		d := wire.NewDecoder(msg)
		d.Uint8() // type
		d.Uint8() // version
		got := d.Uint64()
		if d.Err() != nil {
			return false
		}
		if got == nonce {
			// Retransmission of this connection's hello: replay.
			_ = t.sendTagged(ctx, tagCtrl, reply)
			return false
		}
		// A new connection attempt from a reused address: this
		// connection is dead. Closing releases the transport's peer
		// state so the client's retry reaches a fresh connection.
		t.markPeerClosed()
		t.raw.Close()
		return true
	}
	return false
}

func (c *taggedDataConn) LocalAddr() Addr  { return c.t.raw.LocalAddr() }
func (c *taggedDataConn) RemoteAddr() Addr { return c.t.raw.RemoteAddr() }

// Close announces teardown to the peer (best effort) and closes the
// base connection. The announcement lets datagram peers release
// per-address state promptly.
func (c *taggedDataConn) Close() error {
	if !c.t.isPeerClosed() {
		cctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_ = c.t.sendTagged(cctx, tagCtrl, []byte{msgClose})
		cancel()
	}
	return c.t.raw.Close()
}
