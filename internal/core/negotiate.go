package core

import (
	"context"
	"fmt"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// Negotiation wire protocol (§4.3). Connection establishment exchanges one
// ClientHello and one ServerHello on the control channel of the tagged
// base connection:
//
//	client                              server
//	  |--- ClientHello{spec, offers} --->|
//	  |                                  |  merge specs, resolve selects,
//	  |                                  |  pick impls via policy,
//	  |                                  |  claim resources, collect params
//	  |<-- ServerHello{resolved stack} --|
//
// plus, before the hello, an optional discovery query (§4.2) — the two
// extra round trips the paper measures for Figure 3.

// protoVersion is the negotiation protocol version.
const protoVersion = 1

// Control message types.
const (
	msgClientHello = 1
	msgServerHello = 2
	// msgClose announces connection teardown, so the peer can release
	// per-connection state immediately — essential over datagram
	// transports where address reuse would otherwise bind a new
	// connection's handshake to a stale peer entry.
	msgClose = 3
)

// ClientHello is the connecting endpoint's half of negotiation.
type ClientHello struct {
	// Nonce correlates retransmitted hellos with their reply.
	Nonce uint64
	// Name is the endpoint name (debugging aid, §3.1).
	Name string
	// Host is the client's host identity, used for locality decisions.
	Host string
	// Spec is the client's declared Chunnel DAG (possibly empty: Listing 5
	// clients inherit the server's chunnels).
	Spec *spec.Stack
	// Offers advertises the client's locally-registered implementations.
	Offers []ImplOffer
}

// Encode appends the hello to the encoder.
func (h *ClientHello) Encode(e *wire.Encoder) {
	e.PutUint8(msgClientHello)
	e.PutUint8(protoVersion)
	e.PutUint64(h.Nonce)
	e.PutString(h.Name)
	e.PutString(h.Host)
	h.Spec.Encode(e)
	EncodeOffers(e, h.Offers)
}

// DecodeClientHello reads a ClientHello (after the message-type byte).
func DecodeClientHello(d *wire.Decoder) (*ClientHello, error) {
	if v := d.Uint8(); v != protoVersion {
		if d.Err() == nil {
			return nil, fmt.Errorf("%w: unsupported protocol version %d", ErrNegotiation, v)
		}
	}
	h := &ClientHello{
		Nonce: d.Uint64(),
		Name:  d.String(),
		Host:  d.String(),
		Spec:  spec.DecodeStack(d),
	}
	h.Offers = DecodeOffers(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: malformed client hello: %v", ErrNegotiation, err)
	}
	return h, nil
}

// ResolvedNode is one entry in the negotiated connection stack: a concrete
// chunnel node (selects resolved away) bound to a chosen implementation.
type ResolvedNode struct {
	// Type and Args mirror the spec node.
	Type string
	Args []wire.Value
	// ImplName is the selected implementation.
	ImplName string
	// Endpoint is the chosen implementation's endpoint requirement; it
	// determines which sides instantiate the chunnel.
	Endpoint spec.Endpoint
	// Owner is the side that instantiates the chunnel when Endpoint is
	// EndpointEither (for Client/Server/Both it is implied).
	Owner Side
	// Location is where the implementation runs.
	Location Location
	// Params carries implementation parameters contributed by the server
	// during negotiation (e.g. IPC addresses, shard addresses).
	Params []wire.Value
	// ClaimID is a nonzero discovery resource claim to release on close
	// (meaningful only on the side that made the claim).
	ClaimID uint64
}

// RunsAt reports whether the chunnel is instantiated at the given side.
func (rn ResolvedNode) RunsAt(side Side) bool {
	switch rn.Endpoint {
	case spec.EndpointBoth:
		return true
	case spec.EndpointClient:
		return side == SideClient
	case spec.EndpointServer:
		return side == SideServer
	default: // EndpointEither
		return rn.Owner == side
	}
}

func (rn ResolvedNode) encode(e *wire.Encoder) {
	e.PutString(rn.Type)
	e.PutLen(len(rn.Args))
	for _, a := range rn.Args {
		a.Encode(e)
	}
	e.PutString(rn.ImplName)
	e.PutUint8(uint8(rn.Endpoint))
	e.PutUint8(uint8(rn.Owner))
	e.PutUint8(uint8(rn.Location))
	e.PutLen(len(rn.Params))
	for _, p := range rn.Params {
		p.Encode(e)
	}
}

func decodeResolvedNode(d *wire.Decoder) ResolvedNode {
	var rn ResolvedNode
	rn.Type = d.String()
	n := d.Len()
	if d.Err() != nil {
		return rn
	}
	for i := 0; i < n; i++ {
		rn.Args = append(rn.Args, wire.DecodeValue(d))
	}
	rn.ImplName = d.String()
	rn.Endpoint = spec.Endpoint(d.Uint8())
	rn.Owner = Side(d.Uint8())
	rn.Location = Location(d.Uint8())
	np := d.Len()
	if d.Err() != nil {
		return rn
	}
	for i := 0; i < np; i++ {
		rn.Params = append(rn.Params, wire.DecodeValue(d))
	}
	return rn
}

// ServerHello is the listening endpoint's negotiation decision.
type ServerHello struct {
	Nonce uint64
	Name  string
	Host  string
	// Err, when nonempty, reports negotiation failure (§4.3: "the
	// connection fails in the absence of the implementations").
	Err string
	// Stack is the resolved connection stack, outermost chunnel first.
	Stack []ResolvedNode
}

// Encode appends the hello.
func (h *ServerHello) Encode(e *wire.Encoder) {
	e.PutUint8(msgServerHello)
	e.PutUint8(protoVersion)
	e.PutUint64(h.Nonce)
	e.PutString(h.Name)
	e.PutString(h.Host)
	e.PutString(h.Err)
	e.PutLen(len(h.Stack))
	for _, rn := range h.Stack {
		rn.encode(e)
	}
}

// DecodeServerHello reads a ServerHello (after the message-type byte).
func DecodeServerHello(d *wire.Decoder) (*ServerHello, error) {
	if v := d.Uint8(); v != protoVersion {
		if d.Err() == nil {
			return nil, fmt.Errorf("%w: unsupported protocol version %d", ErrNegotiation, v)
		}
	}
	h := &ServerHello{
		Nonce: d.Uint64(),
		Name:  d.String(),
		Host:  d.String(),
		Err:   d.String(),
	}
	n := d.Len()
	if d.Err() == nil {
		for i := 0; i < n; i++ {
			h.Stack = append(h.Stack, decodeResolvedNode(d))
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: malformed server hello: %v", ErrNegotiation, err)
	}
	return h, nil
}

// DiscoveryClient is the runtime's view of the Bertha discovery service
// (§4.2). The concrete implementation lives in internal/discovery; core
// depends only on this interface.
type DiscoveryClient interface {
	// Query returns advertisements for the given chunnel types.
	Query(ctx context.Context, types []string) ([]ImplOffer, error)
	// Claim reserves an implementation's resources for a connection; it
	// fails when capacity is exhausted, in which case negotiation falls
	// back to the next candidate.
	Claim(ctx context.Context, implName string, res Resources) (claimID uint64, err error)
	// Release frees a prior claim.
	Release(ctx context.Context, claimID uint64) error
}

// mergeSpecs computes the connection's effective DAG from the two
// endpoints' declarations: an empty side inherits the other's DAG
// (Listing 5); equal DAGs agree; conflicting non-empty DAGs fail
// (§4.3 compatibility check).
func mergeSpecs(client, server *spec.Stack) (*spec.Stack, error) {
	switch {
	case client.Empty():
		return server, nil
	case server.Empty():
		return client, nil
	case client.Equal(server):
		return server, nil
	default:
		return nil, fmt.Errorf("%w: client %s vs server %s", ErrIncompatibleSpecs, client, server)
	}
}

// resolveSelects flattens select nodes into their chosen branch using the
// registered resolver for the node's type (default: first branch all of
// whose chunnel types have usable candidates).
func resolveSelects(s *spec.Stack, reg *Registry, sctx SelectContext) ([]spec.Node, error) {
	return resolveSelectsDepth(s, reg, sctx, 0)
}

func resolveSelectsDepth(s *spec.Stack, reg *Registry, sctx SelectContext, depth int) ([]spec.Node, error) {
	if depth > spec.MaxDepth {
		return nil, fmt.Errorf("%w: select nesting too deep", ErrNegotiation)
	}
	var out []spec.Node
	for _, n := range s.Nodes {
		if !n.IsSelect() {
			out = append(out, n)
			continue
		}
		idx, err := pickBranch(n, reg, sctx)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(n.Branches) {
			return nil, fmt.Errorf("%w: resolver for %q chose branch %d of %d", ErrNegotiation, n.Type, idx, len(n.Branches))
		}
		nodes, err := resolveSelectsDepth(n.Branches[idx], reg, sctx, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, nodes...)
	}
	return out, nil
}

func pickBranch(n spec.Node, reg *Registry, sctx SelectContext) (int, error) {
	if res, ok := reg.Resolver(n.Type); ok {
		return res(n.Args, n.Branches, sctx)
	}
	// Default: first branch that can be satisfied — every plain node's
	// type has a candidate, and every nested select resolves recursively.
	for i, b := range n.Branches {
		if branchAvailable(b, reg, sctx) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: no branch of select %q is available", ErrNoImplementation, n.Type)
}

func branchAvailable(b *spec.Stack, reg *Registry, sctx SelectContext) bool {
	for _, n := range b.Nodes {
		if n.IsSelect() {
			idx, err := pickBranch(n, reg, sctx)
			if err != nil || idx < 0 || idx >= len(n.Branches) {
				return false
			}
			if !branchAvailable(n.Branches[idx], reg, sctx) {
				return false
			}
			continue
		}
		if !sctx.Available(n.Type) {
			return false
		}
	}
	return true
}

// decide is the server-side negotiation decision: given the client hello
// and the server's spec/registry/policy/discovery, produce the resolved
// stack. It performs select resolution, candidate collection, endpoint
// feasibility filtering, policy ranking, resource claiming, and parameter
// collection.
func decide(ctx context.Context, ch *ClientHello, srv *negotiator) ([]ResolvedNode, error) {
	effective, err := mergeSpecs(ch.Spec, srv.stack)
	if err != nil {
		return nil, err
	}
	if err := effective.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNegotiation, err)
	}

	// Gather candidate sets.
	clientOffers := ch.Offers
	serverOffers := srv.registry.Offers(nil)
	var discovered []ImplOffer
	if srv.discovery != nil {
		discovered, err = srv.discovery.Query(ctx, effective.Types())
		if err != nil {
			return nil, fmt.Errorf("%w: discovery query: %v", ErrNegotiation, err)
		}
	}

	byType := map[string][]Candidate{}
	add := func(off ImplOffer, from Side, disc bool) {
		byType[off.Type] = append(byType[off.Type], Candidate{Offer: off, From: from, Discovered: disc})
	}
	clientSet := map[string]bool{}
	for _, o := range clientOffers {
		add(o, SideClient, false)
		clientSet[o.Name] = true
	}
	serverSet := map[string]bool{}
	for _, o := range serverOffers {
		add(o, SideServer, false)
		serverSet[o.Name] = true
	}
	for _, o := range discovered {
		// A discovered on-server offload is instantiated by whichever
		// endpoint shares its host; default to the server for in-network
		// devices (the server side coordinates switch configuration).
		from := SideServer
		if o.Host != "" && o.Host == ch.Host {
			from = SideClient
		}
		add(o, from, true)
	}

	sctx := SelectContext{
		ClientHost: ch.Host,
		ServerHost: srv.host,
		Available: func(t string) bool {
			return len(byType[t]) > 0
		},
	}
	nodes, err := resolveSelects(effective, srv.registry, sctx)
	if err != nil {
		return nil, err
	}

	if srv.optimizer != nil {
		nodes, err = srv.optimizer.Apply(nodes, byType)
		if err != nil {
			return nil, fmt.Errorf("%w: optimizer: %v", ErrNegotiation, err)
		}
	}

	resolved := make([]ResolvedNode, 0, len(nodes))
	for _, node := range nodes {
		rn, err := bindNode(ctx, node, byType[node.Type], ch, srv, clientSet, serverSet)
		if err != nil {
			return nil, err
		}
		resolved = append(resolved, rn)
	}

	// Distributed tracing rides negotiation rather than the application
	// spec: when the server endpoint enables it and both peers register
	// the trace chunnel, append it as the innermost layer (appended last
	// → wrapped first in assemble), so its 16-byte context lands
	// directly after the mux tag byte where forwarding elements peek.
	// A peer without the implementation silently gets an untraced stack —
	// tracing is an observability opt-in, never a negotiation failure.
	if srv.tracing && clientSet[TraceImplName] && serverSet[TraceImplName] {
		resolved = append(resolved, ResolvedNode{
			Type:     TraceChunnelType,
			ImplName: TraceImplName,
			Endpoint: spec.EndpointBoth,
		})
	}
	return resolved, nil
}

// bindNode selects an implementation for one node, claiming resources and
// collecting server-side parameters.
func bindNode(ctx context.Context, node spec.Node, cands []Candidate, ch *ClientHello, srv *negotiator, clientSet, serverSet map[string]bool) (ResolvedNode, error) {
	var usable []Candidate
	for _, c := range cands {
		if !c.usableFor(node, ch.Host, srv.host) {
			continue
		}
		// Endpoint feasibility: a Both implementation requires the same
		// implementation to be instantiable at both endpoints.
		if c.Offer.Endpoint == spec.EndpointBoth && !(clientSet[c.Offer.Name] && serverSet[c.Offer.Name]) {
			continue
		}
		// A Client (resp. Server) implementation must be instantiable at
		// that side.
		if c.Offer.Endpoint == spec.EndpointClient && !clientSet[c.Offer.Name] && !(c.Discovered && c.From == SideClient) {
			continue
		}
		if c.Offer.Endpoint == spec.EndpointServer && !serverSet[c.Offer.Name] && !(c.Discovered && c.From == SideServer) {
			continue
		}
		usable = append(usable, c)
	}

	for len(usable) > 0 {
		chosen, err := srv.policy(node, usable)
		if err != nil {
			return ResolvedNode{}, fmt.Errorf("%w: %v", ErrNegotiation, err)
		}
		rn := ResolvedNode{
			Type:     node.Type,
			Args:     node.Args,
			ImplName: chosen.Offer.Name,
			Endpoint: chosen.Offer.Endpoint,
			Owner:    chosen.From,
			Location: chosen.Offer.Location,
		}
		// Claim discovered resources; on failure, drop this candidate and
		// rerun the policy (paper §2: fall back when "resources required
		// by registered implementations are already occupied").
		if chosen.Discovered && !chosen.Offer.Resources.IsZero() && srv.discovery != nil {
			claim, err := srv.discovery.Claim(ctx, chosen.Offer.Name, chosen.Offer.Resources)
			if err != nil {
				srv.traceFallback(node.Type, chosen, "resource claim failed: "+err.Error())
				usable = removeCandidate(usable, chosen)
				continue
			}
			rn.ClaimID = claim
		}
		// Validate the node's arguments against the chosen (or any
		// local same-type) implementation before committing.
		if err := srv.validateArgs(rn.ImplName, rn.Type, node.Args); err != nil {
			return ResolvedNode{}, fmt.Errorf("%w: %v", ErrNegotiation, err)
		}
		// Collect server-side negotiation parameters: the chosen
		// implementation if the server has it, otherwise any server
		// implementation of the same chunnel type that provides
		// parameters (e.g. the server's sharding implementation publishes
		// shard addresses even when the client-push variant is chosen).
		if pp := srv.paramProvider(rn.ImplName, rn.Type); pp != nil {
			params, err := pp.NegotiateParams(ctx, srv.env, node.Args)
			if err != nil {
				// The implementation cannot be configured here (e.g. the
				// switch variant on a host with no programmable switch):
				// release any claim and fall back to the next candidate.
				if rn.ClaimID != 0 && srv.discovery != nil {
					srv.discovery.Release(ctx, rn.ClaimID)
				}
				srv.traceFallback(node.Type, chosen, "params unobtainable: "+err.Error())
				usable = removeCandidate(usable, chosen)
				continue
			}
			rn.Params = params
		}
		srv.traceChosen(rn, chosen)
		return rn, nil
	}
	return ResolvedNode{}, fmt.Errorf("%w: %q", ErrNoImplementation, node.Type)
}

// traceChosen records a TraceImplChosen event carrying the policy's
// ranking inputs for the winning candidate.
func (srv *negotiator) traceChosen(rn ResolvedNode, chosen Candidate) {
	srv.tel.Trace().Record(telemetry.TraceEvent{
		Endpoint: srv.name,
		Side:     SideServer.String(),
		Kind:     telemetry.TraceImplChosen,
		Chunnel:  rn.Type,
		Impl:     rn.ImplName,
		Detail: fmt.Sprintf("priority=%d location=%s from=%s discovered=%v",
			chosen.Offer.Priority, chosen.Offer.Location, chosen.From, chosen.Discovered),
	})
}

// traceFallback records a TraceFallback event: the preferred candidate
// was dropped and the policy re-runs over the remaining set.
func (srv *negotiator) traceFallback(chunnelType string, dropped Candidate, why string) {
	srv.tel.Trace().Record(telemetry.TraceEvent{
		Endpoint: srv.name,
		Side:     SideServer.String(),
		Kind:     telemetry.TraceFallback,
		Chunnel:  chunnelType,
		Impl:     dropped.Offer.Name,
		Detail:   why,
	})
}

func removeCandidate(cands []Candidate, c Candidate) []Candidate {
	out := cands[:0]
	for _, x := range cands {
		if x.Offer.Name != c.Offer.Name || x.From != c.From || x.Discovered != c.Discovered {
			out = append(out, x)
		}
	}
	return out
}
