package core

import (
	"context"

	"github.com/bertha-net/bertha/internal/wire"
)

// BufConn is the zero-copy fast path of the data plane. Connections that
// implement it move wire.Buf message buffers instead of plain byte
// slices, so a chunnel stack of depth d costs O(1) allocations per
// message: header-adding chunnels Prepend into the buffer's reserved
// headroom on the way down, and TrimFront their header off on the way
// up, with transports reading into (and writing from) pooled buffers.
//
// Ownership is linear:
//
//   - SendBuf transfers ownership of b to the connection. The caller
//     must not touch b afterwards — not even Release. The connection
//     (or a layer below it) releases b when transmission is done.
//   - RecvBuf transfers ownership of the returned buffer to the caller,
//     who must Release it (or CopyOut / Detach) exactly once.
//
// The plain Conn methods keep their documented copying semantics
// (Send may not retain p after return; Recv returns a caller-owned
// slice); SendBuf/RecvBuf and plain Send/Recv may be freely mixed on
// the same connection.
type BufConn interface {
	Conn
	// SendBuf transmits one message, consuming b.
	SendBuf(ctx context.Context, b *wire.Buf) error
	// RecvBuf returns the next message as a buffer owned by the caller.
	RecvBuf(ctx context.Context) (*wire.Buf, error)
}

// HeadroomConn is implemented by connections that know how much
// headroom a buffer handed to SendBuf should reserve so that every
// layer below can Prepend its header without reallocating. A chunnel
// reports its own header size plus its inner connection's headroom;
// transports report 0.
type HeadroomConn interface {
	Headroom() int
}

// HeadroomOf returns the send headroom to reserve for conn:
// conn's own figure when it implements HeadroomConn, and a conservative
// default otherwise (an unknown wrapper may add headers we cannot see).
func HeadroomOf(conn Conn) int {
	if h, ok := conn.(HeadroomConn); ok {
		return h.Headroom()
	}
	return wire.DefaultHeadroom
}

// SendBuf sends b over conn, taking the zero-copy path when conn
// implements BufConn and degrading to a plain Send (one copy inside the
// transport, then release) otherwise. Ownership of b transfers to the
// callee in both cases.
func SendBuf(ctx context.Context, conn Conn, b *wire.Buf) error {
	if bc, ok := conn.(BufConn); ok {
		return bc.SendBuf(ctx, b)
	}
	err := conn.Send(ctx, b.Bytes())
	b.Release()
	return err
}

// RecvBuf receives the next message from conn as an owned buffer,
// wrapping the plain Recv result when conn does not implement BufConn.
// The wrap is free: plain Recv already returns a caller-owned slice.
func RecvBuf(ctx context.Context, conn Conn) (*wire.Buf, error) {
	if bc, ok := conn.(BufConn); ok {
		return bc.RecvBuf(ctx)
	}
	p, err := conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	return wire.WrapBuf(p), nil
}
