// Package core implements the Bertha runtime: the data-plane interfaces
// chunnels compose over, the implementation registry, the connection
// negotiation protocol (§4.3), implementation selection policy, and the
// Chunnel-DAG optimizer (§6).
//
// The layering follows the paper's architecture:
//
//   - Applications declare a Chunnel DAG (package spec) and create an
//     Endpoint with it.
//   - Fallback implementations are registered with the local Registry when
//     the application launches (Listing 5 line 2); accelerated
//     implementations are registered with the discovery service (§4.2) by
//     offload developers and operators.
//   - When a connection is established, the runtime queries discovery,
//     exchanges DAGs and capabilities with the peer, and binds each
//     chunnel type to an implementation using an operator policy (§4.3).
//   - The selected implementations wrap the base transport connection,
//     outermost chunnel first, producing the connection handed to the
//     application.
package core

import (
	"context"
	"errors"
	"fmt"
)

// Addr identifies a connection endpoint across the transports Bertha
// composes over (UDP, UNIX sockets, in-process pipes, the simulated
// fabric). Host carries a host identity independent of the network address
// so chunnels can make locality decisions (e.g. the local fast-path
// chunnel of Listing 1 checks whether both endpoints share a host).
type Addr struct {
	// Net names the transport: "udp", "unix", "pipe", or "sim".
	Net string
	// Host identifies the machine (not the interface). Two endpoints with
	// equal non-empty Host values are host-local to each other.
	Host string
	// Addr is the transport-specific address string (e.g. "127.0.0.1:4242"
	// or "/tmp/bertha.sock").
	Addr string
}

// String renders the address as net://host/addr.
func (a Addr) String() string {
	return fmt.Sprintf("%s://%s/%s", a.Net, a.Host, a.Addr)
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a == Addr{} }

// SameHost reports whether two addresses identify endpoints on the same
// machine. Unknown (empty) hosts are never considered local.
func (a Addr) SameHost(b Addr) bool {
	return a.Host != "" && a.Host == b.Host
}

// Conn is a connected, datagram-oriented connection: the unit chunnels
// wrap. Send transmits one message; Recv returns one whole message.
// Message boundaries are preserved by every transport and chunnel.
//
// Buffer ownership convention (every implementation must honor it):
//
//   - Send borrows p for the duration of the call only. The
//     implementation must not retain p (or any sub-slice of it) after
//     Send returns; if it needs the bytes later — retransmission
//     queues, background writers — it must copy them. The caller is
//     free to reuse or pool p immediately after Send returns.
//   - Recv returns a slice owned exclusively by the caller: it must not
//     alias an internal buffer that the connection will reuse, and the
//     caller may hold it indefinitely.
//
// Connections that additionally implement BufConn expose a zero-copy
// path with explicit ownership transfer; see BufConn.
//
// Implementations must allow concurrent Send and Recv calls, and must
// unblock pending calls with an error when Close is called.
type Conn interface {
	// Send transmits one message. It may block for flow control and
	// honors ctx cancellation. It must not retain p after returning.
	Send(ctx context.Context, p []byte) error
	// Recv returns the next message. The returned slice is owned by the
	// caller. It honors ctx cancellation and returns ErrClosed after
	// Close.
	Recv(ctx context.Context) ([]byte, error)
	// LocalAddr returns the local endpoint address.
	LocalAddr() Addr
	// RemoteAddr returns the peer endpoint address. For multi-peer
	// connections it returns the canonical (first) peer.
	RemoteAddr() Addr
	// Close releases the connection. It is idempotent.
	Close() error
}

// Listener accepts per-peer connections on a bound address.
type Listener interface {
	// Accept blocks until a new peer connects and returns a Conn for it.
	Accept(ctx context.Context) (Conn, error)
	// Addr returns the bound address.
	Addr() Addr
	// Close stops accepting; pending Accepts return ErrClosed.
	Close() error
}

// Dialer opens new base-transport connections. The runtime provides one to
// chunnel implementations (through Env) so that implementations like
// client-side sharding can open connections to additional endpoints.
type Dialer interface {
	Dial(ctx context.Context, addr Addr) (Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(ctx context.Context, addr Addr) (Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(ctx context.Context, addr Addr) (Conn, error) {
	return f(ctx, addr)
}

// Side distinguishes the connecting endpoint from the listening endpoint
// during negotiation and wrapping.
type Side uint8

// Side values.
const (
	// SideClient is the connecting endpoint.
	SideClient Side = iota
	// SideServer is the listening endpoint.
	SideServer
)

// String returns "client" or "server".
func (s Side) String() string {
	if s == SideClient {
		return "client"
	}
	return "server"
}

// Common errors.
var (
	// ErrClosed is returned by operations on a closed Conn or Listener.
	ErrClosed = errors.New("bertha: connection closed")
	// ErrMessageTooLarge is returned when a message exceeds a transport's
	// maximum datagram size.
	ErrMessageTooLarge = errors.New("bertha: message too large")
	// ErrNegotiation wraps connection-establishment failures (§4.3: "the
	// connection fails in the absence of the implementations").
	ErrNegotiation = errors.New("bertha: negotiation failed")
	// ErrNoImplementation indicates a chunnel type in the DAG had no
	// usable implementation at any endpoint.
	ErrNoImplementation = errors.New("bertha: no usable chunnel implementation")
	// ErrIncompatibleSpecs indicates the two endpoints declared
	// conflicting non-empty Chunnel DAGs.
	ErrIncompatibleSpecs = errors.New("bertha: endpoint chunnel DAGs are incompatible")
	// ErrNoFallback indicates a chunnel type was used without a registered
	// host-fallback implementation (§2 requires one).
	ErrNoFallback = errors.New("bertha: chunnel type has no host fallback implementation")
)
