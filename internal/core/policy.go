package core

import (
	"fmt"

	"github.com/bertha-net/bertha/internal/spec"
)

// Policy selects, for one chunnel node, which candidate implementation a
// connection should use (§4.3: "an operator-supplied policy function").
// Candidates are pre-filtered for scope and endpoint feasibility; the
// policy only ranks. Returning an error fails the connection for this
// node unless a fallback remains.
type Policy func(node spec.Node, candidates []Candidate) (Candidate, error)

// DefaultPolicy mirrors the paper's prototype policy: prefer
// client-provided implementations over server-provided ones, and prefer
// kernel-bypass / hardware-accelerated implementations over standard ones
// (encoded as Priority, with Location as tiebreak). Name breaks remaining
// ties for determinism.
func DefaultPolicy(node spec.Node, candidates []Candidate) (Candidate, error) {
	if len(candidates) == 0 {
		return Candidate{}, fmt.Errorf("%w: %q", ErrNoImplementation, node.Type)
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if policyLess(best, c) {
			best = c
		}
	}
	return best, nil
}

// policyLess reports whether b outranks a under the default policy.
func policyLess(a, b Candidate) bool {
	// Client-provided implementations win over server-provided; offers
	// from discovery rank with the side that would host them.
	if a.From != b.From {
		return b.From == SideClient
	}
	if a.Offer.Priority != b.Offer.Priority {
		return b.Offer.Priority > a.Offer.Priority
	}
	if a.Offer.Location != b.Offer.Location {
		return b.Offer.Location > a.Offer.Location
	}
	return b.Offer.Name < a.Offer.Name
}

// PreferLocation returns a policy that first prefers a specific location
// (e.g. force userspace fallbacks in tests, or force switch offloads in
// experiments), falling back to the default ranking among equals.
func PreferLocation(loc Location) Policy {
	return func(node spec.Node, candidates []Candidate) (Candidate, error) {
		var at, others []Candidate
		for _, c := range candidates {
			if c.Offer.Location == loc {
				at = append(at, c)
			} else {
				others = append(others, c)
			}
		}
		if len(at) > 0 {
			return DefaultPolicy(node, at)
		}
		return DefaultPolicy(node, others)
	}
}

// PreferImpl returns a policy that always selects the named implementation
// when it is a candidate, deferring to the default policy otherwise. The
// benchmark harness uses it to pin scenarios (e.g. server fallback in
// Figure 5).
func PreferImpl(name string) Policy {
	return func(node spec.Node, candidates []Candidate) (Candidate, error) {
		for _, c := range candidates {
			if c.Offer.Name == name {
				return c, nil
			}
		}
		return DefaultPolicy(node, candidates)
	}
}

// AttestationPrefix marks an offer's Meta field as carrying a program
// attestation digest (§6 "Deployment Concerns"): an implementation
// advertised from another administrative domain proves what code it
// runs by publishing a digest a verifier signed.
const AttestationPrefix = "attest:"

// Attestation extracts the attestation digest from an offer, if present.
func (o ImplOffer) Attestation() (string, bool) {
	if len(o.Meta) > len(AttestationPrefix) && o.Meta[:len(AttestationPrefix)] == AttestationPrefix {
		return o.Meta[len(AttestationPrefix):], true
	}
	return "", false
}

// RequireAttestation wraps a policy so that discovered (cross-domain)
// implementations are only eligible when they carry an attestation
// digest the caller trusts — the paper's §6 answer to "a host might end
// up relying on a Chunnel implementation in a different network".
// Locally-registered implementations (either endpoint's own registry)
// are always trusted.
func RequireAttestation(trusted map[string]bool, next Policy) Policy {
	if next == nil {
		next = DefaultPolicy
	}
	return func(node spec.Node, candidates []Candidate) (Candidate, error) {
		var ok []Candidate
		for _, c := range candidates {
			if !c.Discovered {
				ok = append(ok, c)
				continue
			}
			if digest, has := c.Offer.Attestation(); has && trusted[digest] {
				ok = append(ok, c)
			}
		}
		return next(node, ok)
	}
}

// PreferSide returns a policy preferring implementations instantiated at
// the given side.
func PreferSide(side Side) Policy {
	return func(node spec.Node, candidates []Candidate) (Candidate, error) {
		var at, others []Candidate
		for _, c := range candidates {
			if c.From == side {
				at = append(at, c)
			} else {
				others = append(others, c)
			}
		}
		if len(at) > 0 {
			return DefaultPolicy(node, at)
		}
		return DefaultPolicy(node, others)
	}
}
