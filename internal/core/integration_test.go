package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// markImpl is a symmetric EndpointBoth chunnel that frames payloads with a
// marker byte, proving data traverses the chunnel on both sides.
type markImpl struct {
	info   core.ImplInfo
	marker byte
	inits  atomic.Int32
	tears  atomic.Int32
	wraps  atomic.Int32
}

func newMark(name string, marker byte, prio int) *markImpl {
	return &markImpl{
		info: core.ImplInfo{
			Name: name, Type: "mark", Priority: prio,
			Location: core.LocUserspace, Endpoint: spec.EndpointBoth,
		},
		marker: marker,
	}
}

func (m *markImpl) Info() core.ImplInfo { return m.info }
func (m *markImpl) Init(ctx context.Context, env *core.Env, args []wire.Value) error {
	m.inits.Add(1)
	env.Configure("host", "init", m.info.Name)
	return nil
}
func (m *markImpl) Teardown(ctx context.Context, env *core.Env) error {
	m.tears.Add(1)
	env.Configure("host", "teardown", m.info.Name)
	return nil
}
func (m *markImpl) Wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	m.wraps.Add(1)
	return &markConn{Conn: conn, marker: m.marker}, nil
}

type markConn struct {
	core.Conn
	marker byte
}

func (c *markConn) Send(ctx context.Context, p []byte) error {
	return c.Conn.Send(ctx, append([]byte{c.marker}, p...))
}

func (c *markConn) Recv(ctx context.Context) ([]byte, error) {
	p, err := c.Conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if len(p) == 0 || p[0] != c.marker {
		return nil, fmt.Errorf("mark chunnel: bad frame %x", p)
	}
	return p[1:], nil
}

// passImpl is a transparent pass-through implementation used for
// owner-side bookkeeping tests.
type passImpl struct {
	info  core.ImplInfo
	wraps atomic.Int32
}

func (p *passImpl) Info() core.ImplInfo { return p.info }
func (p *passImpl) Init(ctx context.Context, env *core.Env, args []wire.Value) error {
	return nil
}
func (p *passImpl) Teardown(ctx context.Context, env *core.Env) error { return nil }
func (p *passImpl) Wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	p.wraps.Add(1)
	return conn, nil
}

// paramImpl publishes negotiation parameters from the server.
type paramImpl struct {
	passImpl
	published []wire.Value
	got       chan []wire.Value
}

func (p *paramImpl) NegotiateParams(ctx context.Context, env *core.Env, args []wire.Value) ([]wire.Value, error) {
	return p.published, nil
}

func (p *paramImpl) Wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	if side == core.SideClient && p.got != nil {
		p.got <- params
	}
	return conn, nil
}

// fakeDiscovery implements core.DiscoveryClient in memory.
type fakeDiscovery struct {
	offers   []core.ImplOffer
	capacity map[string]int
	claims   map[uint64]string
	nextID   uint64
	queries  atomic.Int32
	releases atomic.Int32
}

func newFakeDiscovery() *fakeDiscovery {
	return &fakeDiscovery{capacity: map[string]int{}, claims: map[uint64]string{}}
}

func (f *fakeDiscovery) Query(ctx context.Context, types []string) ([]core.ImplOffer, error) {
	f.queries.Add(1)
	var out []core.ImplOffer
	for _, o := range f.offers {
		for _, t := range types {
			if o.Type == t {
				out = append(out, o)
			}
		}
	}
	return out, nil
}

func (f *fakeDiscovery) Claim(ctx context.Context, implName string, res core.Resources) (uint64, error) {
	if f.capacity[implName] <= 0 {
		return 0, fmt.Errorf("no capacity for %s", implName)
	}
	f.capacity[implName]--
	f.nextID++
	f.claims[f.nextID] = implName
	return f.nextID, nil
}

func (f *fakeDiscovery) Release(ctx context.Context, id uint64) error {
	if name, ok := f.claims[id]; ok {
		f.capacity[name]++
		delete(f.claims, id)
		f.releases.Add(1)
	}
	return nil
}

// dialAndServe establishes one negotiated connection between a client and
// server endpoint over an in-process pipe network.
func dialAndServe(t *testing.T, cli, srv *core.Endpoint) (core.Conn, core.Conn) {
	t.Helper()
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	base, err := pn.Listen("srvhost", "svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close() })
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		conn core.Conn
		err  error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := nl.Accept(ctx)
		srvCh <- res{c, err}
	}()
	raw, err := pn.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cconn, err := cli.Connect(ctx, raw)
	if err != nil {
		t.Fatalf("client connect: %v", err)
	}
	r := <-srvCh
	if r.err != nil {
		t.Fatalf("server accept: %v", r.err)
	}
	t.Cleanup(func() { cconn.Close(); r.conn.Close() })
	return cconn, r.conn
}

func echoOnce(t *testing.T, cli, srv core.Conn, payload string) {
	t.Helper()
	ctx := ctxT(t)
	if err := cli.Send(ctx, []byte(payload)); err != nil {
		t.Fatalf("client send: %v", err)
	}
	got, err := srv.Recv(ctx)
	if err != nil {
		t.Fatalf("server recv: %v", err)
	}
	if string(got) != payload {
		t.Fatalf("server got %q want %q", got, payload)
	}
	if err := srv.Send(ctx, append([]byte("re:"), got...)); err != nil {
		t.Fatalf("server send: %v", err)
	}
	reply, err := cli.Recv(ctx)
	if err != nil {
		t.Fatalf("client recv: %v", err)
	}
	if string(reply) != "re:"+payload {
		t.Fatalf("client got %q", reply)
	}
}

func TestNegotiatedConnectionBothSidesWrap(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	mc, ms := newMark("mark/fb", 0x42, 0), newMark("mark/fb", 0x42, 0)
	regC.MustRegister(mc)
	regS.MustRegister(ms)

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(spec.New("mark")), core.WithRegistry(regC))
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "hello chunnels")

	if mc.wraps.Load() != 1 || ms.wraps.Load() != 1 {
		t.Errorf("wraps: client=%d server=%d", mc.wraps.Load(), ms.wraps.Load())
	}
	if mc.inits.Load() != 1 || ms.inits.Load() != 1 {
		t.Errorf("inits: client=%d server=%d", mc.inits.Load(), ms.inits.Load())
	}
}

func TestClientInheritsServerSpec(t *testing.T) {
	// Listing 5: the client endpoint specifies no chunnels; the set used
	// is dictated entirely by the server.
	regC, regS := core.NewRegistry(), core.NewRegistry()
	mc, ms := newMark("mark/fb", 0x7, 0), newMark("mark/fb", 0x7, 0)
	regC.MustRegister(mc)
	regS.MustRegister(ms)

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC)) // wrap!()
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "inherited")
	if mc.wraps.Load() != 1 {
		t.Error("client did not instantiate the server-dictated chunnel")
	}
}

func TestIncompatibleSpecsFail(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 1, 0))
	regS.MustRegister(newMark("mark/fb", 1, 0))
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(spec.New("mark"), spec.New("mark")), core.WithRegistry(regC))

	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("h1", "svc")
	nl, _ := srv.Listen(ctx, base)
	go nl.Accept(ctx) // accept loop swallows the failed handshake

	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	_, err := cli.Connect(ctx, raw)
	if !errors.Is(err, core.ErrNegotiation) {
		t.Fatalf("expected negotiation failure, got %v", err)
	}
}

func TestMissingImplementationFails(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()

	// Server declares an unimplemented chunnel: Listen refuses (§2 host
	// fallback requirement).
	srvBad, _ := core.NewEndpoint("srv", spec.Seq(spec.New("ghost")), core.WithRegistry(regS))
	base, _ := pn.Listen("h1", "svc")
	if _, err := srvBad.Listen(ctx, base); !errors.Is(err, core.ErrNoFallback) {
		t.Fatalf("listen must enforce fallback presence: %v", err)
	}

	// Client declares a chunnel neither side implements: the server's
	// decision fails and the client sees a negotiation error (§4.3 "the
	// connection fails in the absence of the implementations").
	srv, _ := core.NewEndpoint("srv", spec.Seq(), core.WithRegistry(regS))
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	go nl.Accept(ctx)
	cli, _ := core.NewEndpoint("cli", spec.Seq(spec.New("ghost")), core.WithRegistry(regC))
	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	if _, err := cli.Connect(ctx, raw); !errors.Is(err, core.ErrNegotiation) {
		t.Fatalf("expected negotiation failure for unimplemented type: %v", err)
	}

	// Scope-pinned to application while only a kernel impl exists: also
	// infeasible.
	regS.MustRegister(&passImpl{info: core.ImplInfo{
		Name: "ghost/xdp", Type: "ghost", Priority: 20,
		Location: core.LocKernel, Endpoint: spec.EndpointServer, Scope: spec.ScopeHost,
	}})
	cli2, _ := core.NewEndpoint("cli2", spec.Seq(spec.New("ghost").WithScope(spec.ScopeApplication)), core.WithRegistry(regC))
	raw2, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	if _, err := cli2.Connect(ctx, raw2); !errors.Is(err, core.ErrNegotiation) {
		t.Fatalf("expected failure for scope-infeasible impl: %v", err)
	}
}

func TestServerParamsReachClient(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	got := make(chan []wire.Value, 1)
	cliImpl := &paramImpl{got: got}
	cliImpl.info = core.ImplInfo{Name: "p/fb", Type: "p", Endpoint: spec.EndpointBoth, Location: core.LocUserspace}
	srvImpl := &paramImpl{published: []wire.Value{wire.Str("/tmp/x.sock"), wire.Int(3)}}
	srvImpl.info = cliImpl.info
	regC.MustRegister(cliImpl)
	regS.MustRegister(srvImpl)

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("p")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	dialAndServe(t, cli, srv)

	select {
	case params := <-got:
		if len(params) != 2 {
			t.Fatalf("params: %v", params)
		}
		if s, _ := params[0].AsString(); s != "/tmp/x.sock" {
			t.Errorf("param[0]: %v", params[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client impl never received params")
	}
}

// TestNewOffloadNoAppChange is the Figure 1 claim: an operator registers
// a new accelerated implementation with the discovery service, and the
// next connection of an unmodified application binds to it — no
// application, system-administration, or network-operator coordination.
func TestNewOffloadNoAppChange(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	fb := &passImpl{info: core.ImplInfo{
		Name: "steer/fb", Type: "steer", Priority: 0,
		Location: core.LocUserspace, Endpoint: spec.EndpointServer,
	}}
	regS.MustRegister(fb)
	// The accelerated variant is linked into the server binary but only
	// the operator (via discovery) decides whether it is used.
	accel := &passImpl{info: core.ImplInfo{
		Name: "steer/xdp", Type: "steer", Priority: 20,
		Location: core.LocKernel, Endpoint: spec.EndpointServer,
		DiscoveryOnly: true,
	}}
	regS.MustRegister(accel)

	disc := newFakeDiscovery()
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("steer")),
		core.WithRegistry(regS), core.WithDiscovery(disc))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))

	// Before the operator registers the offload: fallback is used.
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "before")
	if fb.wraps.Load() != 1 || accel.wraps.Load() != 0 {
		t.Fatalf("pre-offload binding: fb=%d accel=%d", fb.wraps.Load(), accel.wraps.Load())
	}

	// Operator action: advertise the accelerated implementation. The
	// application code (cli, srv endpoints) is untouched.
	disc.offers = []core.ImplOffer{core.OfferFromInfo(accel.info)}

	cconn2, sconn2 := dialAndServe(t, cli, srv)
	echoOnce(t, cconn2, sconn2, "after")
	if accel.wraps.Load() != 1 {
		t.Fatalf("new offload not adopted: fb=%d accel=%d", fb.wraps.Load(), accel.wraps.Load())
	}
	if disc.queries.Load() == 0 {
		t.Error("server should query discovery during negotiation")
	}

	// Operator withdraws the offload: next connection reverts to fallback.
	disc.offers = nil
	cconn3, sconn3 := dialAndServe(t, cli, srv)
	echoOnce(t, cconn3, sconn3, "withdrawn")
	if fb.wraps.Load() != 2 {
		t.Errorf("withdrawal not honored: fb=%d accel=%d", fb.wraps.Load(), accel.wraps.Load())
	}
}

func TestDiscoveryClaimExhaustionFallsBack(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	fb := &passImpl{info: core.ImplInfo{
		Name: "steer/fb", Type: "steer", Priority: 0,
		Location: core.LocUserspace, Endpoint: spec.EndpointServer,
	}}
	sw := &passImpl{info: core.ImplInfo{
		Name: "steer/switch", Type: "steer", Priority: 30,
		Location: core.LocSwitch, Endpoint: spec.EndpointServer,
		Resources: core.Resources{TableEntries: 4}, DiscoveryOnly: true,
	}}
	regS.MustRegister(fb)
	regS.MustRegister(sw)

	disc := newFakeDiscovery()
	disc.offers = []core.ImplOffer{core.OfferFromInfo(sw.info)}
	disc.capacity["steer/switch"] = 0 // exhausted: claims fail

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("steer")),
		core.WithRegistry(regS), core.WithDiscovery(disc))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "fallback works")
	if fb.wraps.Load() != 1 || sw.wraps.Load() != 0 {
		t.Errorf("claim exhaustion must fall back: fb=%d sw=%d", fb.wraps.Load(), sw.wraps.Load())
	}

	// Capacity appears: the switch offload is claimed and used, and the
	// claim is released when the connection closes.
	disc.capacity["steer/switch"] = 1
	cconn2, sconn2 := dialAndServe(t, cli, srv)
	echoOnce(t, cconn2, sconn2, "offloaded")
	if sw.wraps.Load() != 1 {
		t.Error("switch impl should be selected once capacity exists")
	}
	if len(disc.claims) != 1 {
		t.Errorf("expected one outstanding claim, have %d", len(disc.claims))
	}
	sconn2.Close()
	time.Sleep(50 * time.Millisecond)
	if disc.releases.Load() == 0 {
		t.Error("closing the connection should release the claim")
	}
	_ = cconn2
}

func TestHandshakeSurvivesLoss(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 5, 0))
	regS.MustRegister(newMark("mark/fb", 5, 0))
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))

	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("h1", "svc")
	nl, _ := srv.Listen(ctx, base)
	srvCh := make(chan core.Conn, 1)
	go func() {
		c, err := nl.Accept(ctx)
		if err == nil {
			srvCh <- c
		}
	}()
	raw, _ := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	// Drop ~40% of client->server messages: hellos must be retransmitted.
	lossy := transport.Lossy(raw, transport.LossConfig{Seed: 99, DropProb: 0.4})
	cconn, err := cli.Connect(ctx, lossy)
	if err != nil {
		t.Fatalf("connect over lossy link: %v", err)
	}
	select {
	case sconn := <-srvCh:
		// Client->server data may be dropped by the lossy wrapper, so
		// drive the reverse (reliable) direction.
		if err := sconn.Send(ctx, []byte("down")); err != nil {
			t.Fatal(err)
		}
		if m, err := cconn.Recv(ctx); err != nil || string(m) != "down" {
			t.Fatalf("recv: %q %v", m, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never accepted")
	}
}

func TestSelectResolutionEndToEnd(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	ipc := newMark("ipc/fb", 0xA, 0)
	ipc.info.Type = "ipc"
	netm := newMark("net/fb", 0xB, 0)
	netm.info.Type = "net"
	for _, r := range []*core.Registry{regC, regS} {
		i := newMark("ipc/fb", 0xA, 0)
		i.info.Type = "ipc"
		n := newMark("net/fb", 0xB, 0)
		n.info.Type = "net"
		r.MustRegister(i)
		r.MustRegister(n)
	}
	// Resolver on the server picks branch by host equality.
	regS.RegisterResolver("local_or_remote", func(args []wire.Value, branches []*spec.Stack, sctx core.SelectContext) (int, error) {
		if sctx.ClientHost == sctx.ServerHost {
			return 0, nil
		}
		return 1, nil
	})
	stack := spec.Seq(spec.Select("local_or_remote", nil,
		spec.Seq(spec.New("ipc")),
		spec.Seq(spec.New("net")),
	))
	srv, _ := core.NewEndpoint("srv", stack, core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	// dialAndServe uses different hosts ("clihost" vs "srvhost"): branch 1.
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "cross-host")
	// The net marker (0xB) chunnel was used; ipc was not. Verify by
	// checking the client registry's net impl wrapped once.
	impls := regC.ImplsFor("net")
	if impls[0].(*markImpl).wraps.Load() != 1 {
		t.Error("net branch impl not used")
	}
	if regC.ImplsFor("ipc")[0].(*markImpl).wraps.Load() != 0 {
		t.Error("ipc branch impl should be unused")
	}
}

func TestTeardownOnClose(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	mc, ms := newMark("mark/fb", 2, 0), newMark("mark/fb", 2, 0)
	regC.MustRegister(mc)
	regS.MustRegister(ms)
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "x")
	cconn.Close()
	cconn.Close() // idempotent
	if mc.tears.Load() != 1 {
		t.Errorf("client teardown count: %d", mc.tears.Load())
	}
	sconn.Close()
	if ms.tears.Load() != 1 {
		t.Errorf("server teardown count: %d", ms.tears.Load())
	}
}

func TestEitherEndpointOwnerSemantics(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	cImpl := &passImpl{info: core.ImplInfo{Name: "trace/fb", Type: "trace", Endpoint: spec.EndpointEither, Location: core.LocUserspace}}
	sImpl := &passImpl{info: core.ImplInfo{Name: "trace/fb", Type: "trace", Endpoint: spec.EndpointEither, Location: core.LocUserspace}}
	regC.MustRegister(cImpl)
	regS.MustRegister(sImpl)
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("trace")), core.WithRegistry(regS))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "either")
	// Default policy prefers client-provided: exactly the client wraps.
	if cImpl.wraps.Load() != 1 || sImpl.wraps.Load() != 0 {
		t.Errorf("owner semantics: client=%d server=%d", cImpl.wraps.Load(), sImpl.wraps.Load())
	}
}

func TestPolicyPinningPerEndpoint(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	fbC, fbS := newMark("mark/fb", 1, 0), newMark("mark/fb", 1, 0)
	fastC, fastS := newMark("mark/fast", 1, 15), newMark("mark/fast", 1, 15)
	regC.MustRegister(fbC)
	regC.MustRegister(fastC)
	regS.MustRegister(fbS)
	regS.MustRegister(fastS)

	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")),
		core.WithRegistry(regS), core.WithPolicy(core.PreferImpl("mark/fb")))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	cconn, sconn := dialAndServe(t, cli, srv)
	echoOnce(t, cconn, sconn, "pinned")
	if fbS.wraps.Load() != 1 || fastS.wraps.Load() != 0 {
		t.Errorf("policy pin ignored: fb=%d fast=%d", fbS.wraps.Load(), fastS.wraps.Load())
	}
}

func TestConcurrentConnections(t *testing.T) {
	regC, regS := core.NewRegistry(), core.NewRegistry()
	regC.MustRegister(newMark("mark/fb", 6, 0))
	regS.MustRegister(newMark("mark/fb", 6, 0))
	srv, _ := core.NewEndpoint("srv", spec.Seq(spec.New("mark")), core.WithRegistry(regS))

	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	base, _ := pn.Listen("h1", "svc")
	nl, _ := srv.Listen(ctx, base)
	go func() {
		for {
			c, err := nl.Accept(ctx)
			if err != nil {
				return
			}
			go func(c core.Conn) {
				for {
					m, err := c.Recv(ctx)
					if err != nil {
						return
					}
					c.Send(ctx, m)
				}
			}(c)
		}
	}()

	const nclients = 8
	errs := make(chan error, nclients)
	for i := 0; i < nclients; i++ {
		go func(i int) {
			cli, _ := core.NewEndpoint(fmt.Sprintf("cli%d", i), spec.Seq(), core.WithRegistry(regC))
			raw, err := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
			if err != nil {
				errs <- err
				return
			}
			conn, err := cli.Connect(ctx, raw)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for k := 0; k < 20; k++ {
				msg := fmt.Sprintf("c%d-%d", i, k)
				if err := conn.Send(ctx, []byte(msg)); err != nil {
					errs <- err
					return
				}
				got, err := conn.Recv(ctx)
				if err != nil {
					errs <- err
					return
				}
				if string(got) != msg {
					errs <- fmt.Errorf("echo mismatch: %q vs %q", got, msg)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < nclients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
