package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// multiImpl collapses group connections: Send fans out with a tag byte,
// Recv strips it. Used to exercise MultiWrapper dispatch.
type multiImpl struct {
	passImpl
	multiWraps atomic.Int32
}

func (m *multiImpl) WrapMulti(ctx context.Context, conns []core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	m.multiWraps.Add(1)
	return &groupConn{conns: conns}, nil
}

type groupConn struct {
	conns []core.Conn
}

func (g *groupConn) Send(ctx context.Context, p []byte) error {
	for _, c := range g.conns {
		if err := c.Send(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

func (g *groupConn) Recv(ctx context.Context) ([]byte, error) {
	return g.conns[0].Recv(ctx) // first peer only, enough for the test
}

func (g *groupConn) LocalAddr() core.Addr  { return g.conns[0].LocalAddr() }
func (g *groupConn) RemoteAddr() core.Addr { return g.conns[0].RemoteAddr() }
func (g *groupConn) Close() error {
	for _, c := range g.conns {
		c.Close()
	}
	return nil
}

// startReplicas launches n server endpoints sharing a registry factory,
// each echoing "<name>:" + message.
func startReplicas(t *testing.T, n int, mkReg func() *core.Registry) (pn *transport.PipeNetwork, addrs []core.Addr) {
	t.Helper()
	ctx := ctxT(t)
	pn = transport.NewPipeNetwork()
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		srv, err := core.NewEndpoint("replica-"+name, spec.Seq(spec.New("group")), core.WithRegistry(mkReg()))
		if err != nil {
			t.Fatal(err)
		}
		base, err := pn.Listen("host-"+name, "svc-"+name)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, base.Addr())
		nl, err := srv.Listen(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		go func(name string) {
			for {
				conn, err := nl.Accept(ctx)
				if err != nil {
					return
				}
				go func(conn core.Conn) {
					for {
						m, err := conn.Recv(ctx)
						if err != nil {
							return
						}
						conn.Send(ctx, append([]byte(name+":"), m...))
					}
				}(conn)
			}
		}(name)
	}
	return pn, addrs
}

func groupReg(multi bool) func() *core.Registry {
	return func() *core.Registry {
		reg := core.NewRegistry()
		info := core.ImplInfo{Name: "group/fb", Type: "group",
			Endpoint: spec.EndpointBoth, Location: core.LocUserspace}
		if multi {
			m := &multiImpl{}
			m.info = info
			reg.MustRegister(m)
		} else {
			p := &passImpl{info: info}
			reg.MustRegister(p)
		}
		return reg
	}
}

func dialAll(t *testing.T, pn *transport.PipeNetwork, addrs []core.Addr) []core.Conn {
	t.Helper()
	ctx := ctxT(t)
	var raws []core.Conn
	for _, a := range addrs {
		raw, err := pn.DialFrom(ctx, "clienthost", a)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	return raws
}

func TestConnectMultiFanOut(t *testing.T) {
	ctx := ctxT(t)
	pn, addrs := startReplicas(t, 3, groupReg(false))
	cli, _ := core.NewEndpoint("ordered-multicast-client", spec.Seq(), core.WithRegistry(groupReg(false)()))
	conn, err := cli.ConnectMulti(ctx, dialAll(t, pn, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(ctx, []byte("op")); err != nil {
		t.Fatal(err)
	}
	// All three replicas respond (fan-in order arbitrary).
	got := map[string]bool{}
	for i := 0; i < 3; i++ {
		m, err := conn.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got[string(m)] = true
	}
	for _, want := range []string{"a:op", "b:op", "c:op"} {
		if !got[want] {
			t.Errorf("missing reply %q in %v", want, got)
		}
	}
}

func TestConnectMultiUsesMultiWrapper(t *testing.T) {
	ctx := ctxT(t)
	pn, addrs := startReplicas(t, 3, groupReg(false))
	regC := groupReg(true)()
	cli, _ := core.NewEndpoint("cli", spec.Seq(spec.New("group")), core.WithRegistry(regC))
	conn, err := cli.ConnectMulti(ctx, dialAll(t, pn, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	impl, _ := regC.Lookup("group/fb")
	if impl.(*multiImpl).multiWraps.Load() != 1 {
		t.Error("MultiWrapper was not used")
	}
	conn.Send(ctx, []byte("x"))
	if m, err := conn.Recv(ctx); err != nil || string(m) != "a:x" {
		t.Fatalf("recv: %q %v", m, err)
	}
}

func TestConnectMultiSinglePeerDegeneratesToConnect(t *testing.T) {
	ctx := ctxT(t)
	pn, addrs := startReplicas(t, 1, groupReg(false))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(groupReg(false)()))
	conn, err := cli.ConnectMulti(ctx, dialAll(t, pn, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Send(ctx, []byte("solo"))
	if m, err := conn.Recv(ctx); err != nil || string(m) != "a:solo" {
		t.Fatalf("recv: %q %v", m, err)
	}
}

func TestConnectMultiEmptyFails(t *testing.T) {
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(core.NewRegistry()))
	if _, err := cli.ConnectMulti(ctxT(t), nil); !errors.Is(err, core.ErrNegotiation) {
		t.Errorf("empty group: %v", err)
	}
}

func TestConnectMultiInconsistentBindingsFail(t *testing.T) {
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	// Replica A binds group/fb; replica B declares a different chunnel.
	regA := groupReg(false)()
	srvA, _ := core.NewEndpoint("a", spec.Seq(spec.New("group")), core.WithRegistry(regA))
	baseA, _ := pn.Listen("ha", "a")
	nlA, _ := srvA.Listen(ctx, baseA)
	go nlA.Accept(ctx)

	regB := core.NewRegistry()
	regB.MustRegister(&passImpl{info: core.ImplInfo{Name: "other/fb", Type: "other",
		Endpoint: spec.EndpointBoth, Location: core.LocUserspace}})
	srvB, _ := core.NewEndpoint("b", spec.Seq(spec.New("other")), core.WithRegistry(regB))
	baseB, _ := pn.Listen("hb", "b")
	nlB, _ := srvB.Listen(ctx, baseB)
	go nlB.Accept(ctx)

	regC := groupReg(false)()
	regC.MustRegister(&passImpl{info: core.ImplInfo{Name: "other/fb", Type: "other",
		Endpoint: spec.EndpointBoth, Location: core.LocUserspace}})
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(regC))
	raws := dialAll(t, pn, []core.Addr{{Net: "pipe", Addr: "a"}, {Net: "pipe", Addr: "b"}})
	_, err := cli.ConnectMulti(ctx, raws)
	if err == nil {
		t.Fatal("inconsistent group bindings must fail")
	}
}

func TestFanConnCloseUnblocks(t *testing.T) {
	ctx := ctxT(t)
	pn, addrs := startReplicas(t, 2, groupReg(false))
	cli, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(groupReg(false)()))
	conn, err := cli.ConnectMulti(ctx, dialAll(t, pn, addrs))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := conn.Recv(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("recv after close should fail")
		}
	case <-time.After(2 * time.Second):
		t.Error("recv did not unblock on close")
	}
}
