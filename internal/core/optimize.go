package core

import (
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Optimizer transforms a resolved chunnel sequence during negotiation
// (§6 "Performance Optimization"): because the runtime sees the entire
// DAG a connection's data traverses, and binds implementations in
// coordination with all endpoints, it can safely
//
//   - reorder the DAG to reduce data movement between offloads (e.g.
//     rewrite encrypt |> http2 |> tcp into http2 |> encrypt |> tcp so a
//     SmartNIC that offloads encryption and TCP is crossed once instead
//     of three times),
//   - merge adjacent chunnels when a fused offload exists (encrypt + tcp
//     → tls), and
//   - eliminate redundant chunnels (adjacent idempotent duplicates).
//
// Transformations rely on per-type metadata registered alongside chunnel
// implementations: which types commute, which are idempotent, and which
// pairs fuse.

// TypeMeta is optimizer metadata for one chunnel type.
type TypeMeta struct {
	// Commutes lists chunnel types this type may be reordered across
	// without changing end-to-end semantics (both endpoints apply the
	// same reordered stack, so the wire format stays consistent).
	Commutes []string
	// Idempotent marks types where adjacent duplicates with equal
	// arguments collapse to one.
	Idempotent bool
}

// CommutesWith reports whether the type may swap with other.
func (m TypeMeta) CommutesWith(other string) bool {
	for _, t := range m.Commutes {
		if t == other {
			return true
		}
	}
	return false
}

// SetTypeMeta registers optimizer metadata for a chunnel type.
func (r *Registry) SetTypeMeta(chunnelType string, m TypeMeta) {
	r.mu.Lock()
	r.meta[chunnelType] = m
	r.mu.Unlock()
}

// TypeMetaFor returns the registered metadata (zero value when absent).
func (r *Registry) TypeMetaFor(chunnelType string) TypeMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.meta[chunnelType]
}

// AddFusion declares that an adjacent pair (outer, inner) may be replaced
// by the fused chunnel type when an implementation of the fused type is
// available (e.g. AddFusion("encrypt", "reliable", "tls")).
func (r *Registry) AddFusion(outer, inner, fused string) {
	r.mu.Lock()
	r.fusions[[2]string{outer, inner}] = fused
	r.mu.Unlock()
}

// Fusion returns the fused type for an adjacent pair, if declared.
func (r *Registry) Fusion(outer, inner string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fusions[[2]string{outer, inner}]
	return f, ok
}

// Optimizer applies §6 passes. Enable the individual passes explicitly;
// the zero Optimizer is a no-op.
type Optimizer struct {
	reg *Registry
	// Eliminate collapses adjacent idempotent duplicates.
	Eliminate bool
	// Reorder moves offloadable chunnels toward the transport across
	// commuting neighbours so offloaded stages are contiguous.
	Reorder bool
	// Merge replaces adjacent pairs with declared fused types when a
	// fused implementation is available.
	Merge bool
}

// NewOptimizer returns an optimizer with all passes enabled, using the
// registry's type metadata and fusion rules.
func NewOptimizer(reg *Registry) *Optimizer {
	return &Optimizer{reg: reg, Eliminate: true, Reorder: true, Merge: true}
}

// Apply runs the enabled passes over the resolved node sequence until a
// fixed point (one pass can expose opportunities for another: a reorder
// may make idempotent duplicates adjacent, a merge may enable further
// reorders). cands maps chunnel type to the connection's candidate
// implementations; a rewrite is only performed when every type it
// introduces has candidates.
func (o *Optimizer) Apply(nodes []spec.Node, cands map[string][]Candidate) ([]spec.Node, error) {
	if o == nil || o.reg == nil {
		return nodes, nil
	}
	out := append([]spec.Node(nil), nodes...)
	// Each pass strictly shrinks or reorders a finite sequence, so a
	// small iteration bound suffices; the signature check detects the
	// fixed point early.
	for iter := 0; iter < 2*len(out)+2; iter++ {
		before := Describe(out)
		if o.Eliminate {
			out = o.eliminate(out)
		}
		if o.Reorder {
			out = o.reorder(out, cands)
		}
		if o.Merge {
			var err error
			out, err = o.merge(out, cands)
			if err != nil {
				return nil, err
			}
		}
		if Describe(out) == before {
			break
		}
	}
	return out, nil
}

// eliminate collapses adjacent duplicates of idempotent types with equal
// arguments.
func (o *Optimizer) eliminate(nodes []spec.Node) []spec.Node {
	out := nodes[:0]
	for _, n := range nodes {
		if len(out) > 0 {
			prev := out[len(out)-1]
			if prev.Type == n.Type && o.reg.TypeMetaFor(n.Type).Idempotent && argsEqual(prev.Args, n.Args) {
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// argsEqual compares two argument lists by deep value equality.
func argsEqual(a, b []wire.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// reorder bubbles offload-capable chunnels toward the transport end
// (later positions) across commuting neighbours that are not offloadable,
// making the offloaded suffix contiguous and minimizing host↔offload
// boundary crossings.
func (o *Optimizer) reorder(nodes []spec.Node, cands map[string][]Candidate) []spec.Node {
	offloadable := func(t string) bool {
		for _, c := range cands[t] {
			if c.Offer.Location.Offloaded() {
				return true
			}
		}
		return false
	}
	out := append([]spec.Node(nil), nodes...)
	for pass := 0; pass < len(out); pass++ {
		swapped := false
		for i := 0; i+1 < len(out); i++ {
			a, b := out[i], out[i+1]
			// Move an offloadable chunnel below a non-offloadable one
			// when the pair commutes and neither is scope-pinned.
			if offloadable(a.Type) && !offloadable(b.Type) &&
				a.Scope == spec.ScopeAny && b.Scope == spec.ScopeAny &&
				o.commute(a.Type, b.Type) {
				out[i], out[i+1] = b, a
				swapped = true
			}
		}
		if !swapped {
			break
		}
	}
	return out
}

func (o *Optimizer) commute(a, b string) bool {
	return o.reg.TypeMetaFor(a).CommutesWith(b) || o.reg.TypeMetaFor(b).CommutesWith(a)
}

// merge replaces adjacent (outer, inner) pairs with a declared fused type
// when the connection has a candidate implementation for the fused type
// (§6: "if the SmartNIC did not explicitly offer separate offloads for
// encryption and TCP, but did offer one for TLS, Bertha could reorder and
// then merge the last two Chunnels").
func (o *Optimizer) merge(nodes []spec.Node, cands map[string][]Candidate) ([]spec.Node, error) {
	out := append([]spec.Node(nil), nodes...)
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(out); i++ {
			fused, ok := o.reg.Fusion(out[i].Type, out[i+1].Type)
			if !ok || len(cands[fused]) == 0 {
				continue
			}
			args := make([]wire.Value, 0, len(out[i].Args)+len(out[i+1].Args))
			args = append(args, out[i].Args...)
			args = append(args, out[i+1].Args...)
			merged := spec.Node{Type: fused, Args: args}
			rest := append([]spec.Node(nil), out[i+2:]...)
			out = append(out[:i:i], merged)
			out = append(out, rest...)
			changed = true
			break
		}
	}
	return out, nil
}

// DataPathCost models §6's data-movement argument: given the location of
// each stage a sent message traverses (application first, wire last), it
// counts host↔offload boundary crossings. The application runs on the
// host CPU and the wire is reached through the NIC, so the §6 example
// (encrypt on NIC, http2 on CPU, tcp on NIC) costs 3 crossings before
// reordering and 1 after.
func DataPathCost(locations []Location) int {
	cost := 0
	cur := LocUserspace // data originates at the application
	for _, loc := range locations {
		if boundary(cur) != boundary(loc) {
			cost++
		}
		cur = loc
	}
	// Finally the data reaches the wire through the NIC boundary.
	if boundary(cur) != true {
		cost++
	}
	return cost
}

// boundary maps a location to which side of the PCIe boundary it is on:
// false = host CPU, true = NIC/switch.
func boundary(l Location) bool {
	switch l {
	case LocUserspace, LocKernel:
		return false
	default:
		return true
	}
}

// Describe renders a node sequence compactly for logs and tests.
func Describe(nodes []spec.Node) string {
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += " |> "
		}
		s += n.Type
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
