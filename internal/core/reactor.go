package core

import "runtime"

// ReactorConfig parameterizes the sharded reactor runtime a demuxing
// listener runs its receive datapath on: N reactor goroutines drain the
// shared kernel socket through the batch receive path and demultiplex
// into per-connection ring buffers, so the goroutine count is O(shards)
// regardless of how many logical connections the socket carries.
type ReactorConfig struct {
	// Shards is the number of reactor goroutines — and of connection-
	// table shards and shard-local buffer pools. 0 selects
	// runtime.GOMAXPROCS(0).
	Shards int
	// RingSize is the per-connection receive ring capacity in messages,
	// rounded up to a power of two. A full ring drops the datagram
	// (datagram semantics; the reliability chunnel recovers it) and the
	// drop is counted with reason queue-full. 0 selects 1024, matching
	// the buffered-channel capacity of the pre-reactor demux path.
	RingSize int
}

// fill resolves zero fields to the defaults.
func (c *ReactorConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	// Round the ring up to a power of two so the ring index is a mask.
	n := 1
	for n < c.RingSize {
		n <<= 1
	}
	c.RingSize = n
}

// Fill resolves zero fields to the defaults (exported for the transport
// and bench packages, which construct reactors directly).
func (c *ReactorConfig) Fill() { c.fill() }

// ReactorConfigurer is implemented by base listeners whose receive
// datapath runs on a sharded reactor. Endpoint.Listen applies the
// endpoint's WithReactor configuration through it before the listener
// starts serving; configuring an already-started reactor is an error.
type ReactorConfigurer interface {
	ConfigureReactor(cfg ReactorConfig) error
}

// ReactorStats is a point-in-time account of one reactor listener — the
// numbers behind the "goroutines and memory per connection" answer in
// /debug/bertha.
type ReactorStats struct {
	// Shards is the configured reactor width.
	Shards int `json:"shards"`
	// RingSize is the per-connection ring capacity in messages.
	RingSize int `json:"ring_size"`
	// Conns is the number of live demultiplexed connections.
	Conns int64 `json:"conns"`
	// ShardConns is the live connection count per table shard.
	ShardConns []int64 `json:"shard_conns,omitempty"`
	// Goroutines is the number of goroutines the listener owns: the
	// reactor loops. Independent of Conns by construction.
	Goroutines int64 `json:"goroutines"`
	// RingOccupied is the current total of undelivered messages parked
	// in connection rings.
	RingOccupied int64 `json:"ring_occupied"`
	// ConnMemBytes estimates the listener's per-connection steady-state
	// memory: connection structs, ring slot arrays, and table slots.
	// It excludes transient message payloads (those are pooled wire
	// buffers accounted by wire/bufs_outstanding).
	ConnMemBytes int64 `json:"conn_mem_bytes"`
	// AcceptQueue is the current depth of the accept backlog.
	AcceptQueue int `json:"accept_queue"`
}

// ReactorAccountant is implemented by reactor listeners; telemetry and
// the connections benchmark read per-listener accounting through it.
type ReactorAccountant interface {
	ReactorStats() ReactorStats
}
