package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Optimizer structural invariants, property-checked over random stacks:
//
//  1. Reordering permutes nodes — it never adds, drops, or retypes them.
//  2. Elimination only removes adjacent idempotent duplicates with equal
//     arguments; everything else survives in order.
//  3. Merging replaces declared (outer, inner) pairs with the fused type
//     and concatenates their arguments; no other nodes change.
//  4. Scope-pinned nodes never move.
//  5. Apply is idempotent: optimizing an optimized stack is a no-op.

func randomOptStack(r *rand.Rand) []spec.Node {
	types := []string{"encrypt", "http2", "compress", "reliable", "serialize"}
	n := 1 + r.Intn(6)
	out := make([]spec.Node, 0, n)
	for i := 0; i < n; i++ {
		node := spec.New(types[r.Intn(len(types))], wire.Int(int64(r.Intn(3))))
		if r.Intn(6) == 0 {
			node = node.WithScope(spec.ScopeApplication)
		}
		out = append(out, node)
	}
	return out
}

func optReg() *Registry {
	reg := NewRegistry()
	reg.SetTypeMeta("encrypt", TypeMeta{Commutes: []string{"http2", "compress"}})
	reg.SetTypeMeta("compress", TypeMeta{Idempotent: true})
	reg.AddFusion("encrypt", "reliable", "tls")
	return reg
}

func optCands(withTLS bool) map[string][]Candidate {
	c := map[string][]Candidate{
		"encrypt":   {{Offer: ImplOffer{Name: "e/nic", Type: "encrypt", Location: LocSmartNIC}}},
		"http2":     {{Offer: ImplOffer{Name: "h/sw", Type: "http2"}}},
		"compress":  {{Offer: ImplOffer{Name: "c/sw", Type: "compress"}}},
		"reliable":  {{Offer: ImplOffer{Name: "r/nic", Type: "reliable", Location: LocSmartNIC}}},
		"serialize": {{Offer: ImplOffer{Name: "s/sw", Type: "serialize"}}},
	}
	if withTLS {
		c["tls"] = []Candidate{{Offer: ImplOffer{Name: "t/nic", Type: "tls", Location: LocSmartNIC}}}
	}
	return c
}

func typeCounts(nodes []spec.Node) map[string]int {
	m := map[string]int{}
	for _, n := range nodes {
		m[n.Type]++
	}
	return m
}

func TestQuickReorderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	reg := optReg()
	o := NewOptimizer(reg)
	o.Eliminate, o.Merge = false, false // reorder only
	cands := optCands(false)
	f := func() bool {
		in := randomOptStack(r)
		out, err := o.Apply(in, cands)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		want, got := typeCounts(in), typeCounts(out)
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickScopePinnedNodesNeverMove(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	reg := optReg()
	o := NewOptimizer(reg)
	o.Eliminate, o.Merge = false, false
	cands := optCands(false)
	f := func() bool {
		in := randomOptStack(r)
		out, err := o.Apply(in, cands)
		if err != nil {
			return false
		}
		// Every scope-pinned node stays at its original index.
		for i, n := range in {
			if n.Scope != spec.ScopeAny && out[i].Type != n.Type {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEliminateOnlyRemovesAdjacentIdempotentDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	reg := optReg()
	o := NewOptimizer(reg)
	o.Reorder, o.Merge = false, false
	f := func() bool {
		in := randomOptStack(r)
		out, err := o.Apply(in, nil)
		if err != nil {
			return false
		}
		// Reconstruct the expected result by hand.
		var want []spec.Node
		for _, n := range in {
			if len(want) > 0 {
				prev := want[len(want)-1]
				if prev.Type == n.Type && n.Type == "compress" && argsEqual(prev.Args, n.Args) {
					continue
				}
			}
			want = append(want, n)
		}
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i].Type != want[i].Type {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeConservesNonFusedNodes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	reg := optReg()
	o := NewOptimizer(reg)
	o.Reorder, o.Eliminate = false, false
	cands := optCands(true)
	f := func() bool {
		in := randomOptStack(r)
		out, err := o.Apply(in, cands)
		if err != nil {
			return false
		}
		// Each tls node accounts for one encrypt+reliable pair; all other
		// node counts are conserved.
		want, got := typeCounts(in), typeCounts(out)
		fused := got["tls"]
		if got["encrypt"]+fused != want["encrypt"] {
			return false
		}
		if got["reliable"]+fused != want["reliable"] {
			return false
		}
		for _, typ := range []string{"http2", "compress", "serialize"} {
			if got[typ] != want[typ] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickApplyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	reg := optReg()
	o := NewOptimizer(reg)
	cands := optCands(true)
	f := func() bool {
		in := randomOptStack(r)
		once, err := o.Apply(in, cands)
		if err != nil {
			return false
		}
		twice, err := o.Apply(once, cands)
		if err != nil {
			return false
		}
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].Type != twice[i].Type {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
