package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// CoalesceConfig parameterizes the send-side-coalescing experiment.
type CoalesceConfig struct {
	// Messages is the number of messages moved per sustained-load
	// scenario.
	Messages int
	// Size is the payload size in bytes.
	Size int
	// JSON selects machine-readable output.
	JSON bool
}

func (c *CoalesceConfig) fill() {
	if c.Messages <= 0 {
		c.Messages = 8192
	}
	if c.Size <= 0 {
		c.Size = 64
	}
}

// CoalesceIdle is the idle-latency comparison: paced single-message
// round trips (gap well above the coalescer's Idle window) on the
// direct path versus through a coalescer whose bypass should make the
// two indistinguishable.
type CoalesceIdle struct {
	GapUsec          float64 `json:"gap_usec"`
	DirectP50Usec    float64 `json:"direct_p50_usec"`
	CoalescedP50Usec float64 `json:"coalesced_p50_usec"`
	// Ratio is coalesced/direct; the idle bypass targets ≤ 1.05.
	Ratio float64 `json:"ratio"`
}

// CoalesceSustained is the throughput comparison under a send firehose:
// a per-message SendBuf loop on the bare stack versus the same loop
// through the coalescer (which turns it into SendBufs bursts riding
// sendmmsg/GSO). The caller's code is identical in both runs — the
// speedup is what coalescing buys applications that never batch.
type CoalesceSustained struct {
	Messages            int     `json:"messages"`
	DirectMsgsPerSec    float64 `json:"direct_msgs_per_sec"`
	CoalescedMsgsPerSec float64 `json:"coalesced_msgs_per_sec"`
	Speedup             float64 `json:"speedup"`
}

// CoalesceSweepPoint is one offered-load point of the latency-vs-
// throughput sweep: messages paced at a fixed gap through the
// coalescer, with the flush-reason split and the queue dwell time p95
// from an isolated telemetry registry.
type CoalesceSweepPoint struct {
	GapUsec      float64 `json:"gap_usec"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	DelayP95Usec float64 `json:"delay_p95_usec"`
	// AdaptiveDelayUsec is the timer budget the gap estimator had
	// armed at the end of the run (the coalesce/adaptive_delay gauge):
	// near the configured Delay when paced slowly, pinned to the floor
	// under a firehose.
	AdaptiveDelayUsec float64 `json:"adaptive_delay_usec"`
	Enqueued          uint64  `json:"enqueued"`
	IdleBypass        uint64  `json:"idle_bypass"`
	FlushSize         uint64  `json:"flush_size"`
	FlushTimer        uint64  `json:"flush_timer"`
	FlushExplicit     uint64  `json:"flush_explicit"`
}

// idleGap keeps the paced round trips far outside the default Idle
// window so every send should take the bypass.
const idleGap = 200 * time.Microsecond

// coalesceSweepGaps are the offered-load points: from clearly idle
// through the adaptation region down to an unpaced firehose.
var coalesceSweepGaps = []time.Duration{100 * time.Microsecond, 20 * time.Microsecond, 5 * time.Microsecond, 0}

// Coalesce measures the adaptive send-side coalescer over the same
// serialize→framing→udp stack the batch experiment uses: idle latency
// (bypass overhead), sustained per-message throughput against the bare
// stack, and a pacing sweep showing the flush-reason mix shift from
// idle-bypass to size-capped bursts as offered load rises.
func Coalesce(w io.Writer, cfg CoalesceConfig) error {
	cfg.fill()

	idle, err := runCoalesceIdle(cfg)
	if err != nil {
		return fmt.Errorf("coalesce idle: %w", err)
	}
	sustained, err := runCoalesceSustained(cfg)
	if err != nil {
		return fmt.Errorf("coalesce sustained: %w", err)
	}
	sweep := make([]CoalesceSweepPoint, 0, len(coalesceSweepGaps))
	for _, gap := range coalesceSweepGaps {
		pt, err := runCoalesceSweepPoint(cfg, gap)
		if err != nil {
			return fmt.Errorf("coalesce sweep gap=%v: %w", gap, err)
		}
		sweep = append(sweep, pt)
	}

	if cfg.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"experiment": "coalesce",
			"idle":       idle,
			"sustained":  sustained,
			"sweep":      sweep,
		})
	}
	fmt.Fprintf(w, "coalesce: idle round trip (%.0fµs gap): direct p50 %.1fµs, coalesced p50 %.1fµs (%.2fx)\n",
		idle.GapUsec, idle.DirectP50Usec, idle.CoalescedP50Usec, idle.Ratio)
	fmt.Fprintf(w, "coalesce: sustained %d msgs: direct %.0f msg/s, coalesced %.0f msg/s (%.2fx)\n",
		sustained.Messages, sustained.DirectMsgsPerSec, sustained.CoalescedMsgsPerSec, sustained.Speedup)
	table := stats.NewTable(
		fmt.Sprintf("coalesce: pacing sweep, %d-byte messages", cfg.Size),
		"gap µs", "msg/s", "delay p95 µs", "adapt µs", "enq", "bypass", "size", "timer", "explicit")
	for _, pt := range sweep {
		table.AddRow(pt.GapUsec, fmt.Sprintf("%.0f", pt.MsgsPerSec),
			fmt.Sprintf("%.1f", pt.DelayP95Usec),
			fmt.Sprintf("%.1f", pt.AdaptiveDelayUsec),
			pt.Enqueued, pt.IdleBypass, pt.FlushSize, pt.FlushTimer, pt.FlushExplicit)
	}
	table.Render(w)
	return nil
}

// coalescedStackPair builds a stack pair with the client side wrapped
// in a coalescer recording into its own registry.
func coalescedStackPair(cfg core.CoalesceConfig) (col *core.Coalescer, srv core.Conn, tel *telemetry.Registry, err error) {
	cli, srv, err := stackPair()
	if err != nil {
		return nil, nil, nil, err
	}
	tel = telemetry.New()
	return core.NewCoalescer(cli, cfg, tel), srv, tel, nil
}

// runCoalesceIdle measures paced single-message round-trip latency
// with and without the coalescer in the path. The two clients are
// interleaved round for round, so both sample identical machine
// conditions and the ratio isolates the bypass overhead rather than
// run-to-run scheduling drift.
func runCoalesceIdle(cfg CoalesceConfig) (CoalesceIdle, error) {
	rounds := cfg.Messages / 8
	if rounds < 512 {
		rounds = 512
	}
	direct, srvA, err := stackPair()
	if err != nil {
		return CoalesceIdle{}, err
	}
	defer direct.Close()
	defer srvA.Close()
	col, srvB, _, err := coalescedStackPair(core.CoalesceConfig{})
	if err != nil {
		return CoalesceIdle{}, err
	}
	defer col.Close()
	defer srvB.Close()
	ctx := context.Background()
	go batchEcho(ctx, srvA, 1, false)
	go batchEcho(ctx, srvB, 1, false)

	payload := make([]byte, cfg.Size)
	round := func(cli core.Conn) (time.Duration, error) {
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		t0 := time.Now()
		if err := core.SendBuf(rctx, cli, wire.NewBufFrom(core.HeadroomOf(cli), payload)); err != nil {
			return 0, err
		}
		b, err := core.RecvBuf(rctx, cli)
		if err != nil {
			return 0, err
		}
		d := time.Since(t0)
		b.Release()
		return d, nil
	}
	latD := make([]time.Duration, 0, rounds)
	latC := make([]time.Duration, 0, rounds)
	measure := func(record bool) error {
		d, err := round(direct)
		if err != nil {
			return err
		}
		time.Sleep(idleGap)
		c, err := round(col)
		if err != nil {
			return err
		}
		time.Sleep(idleGap)
		if record {
			latD = append(latD, d)
			latC = append(latC, c)
		}
		return nil
	}
	for i := 0; i < rounds/8+16; i++ { // warmup
		if err := measure(false); err != nil {
			return CoalesceIdle{}, err
		}
	}
	for i := 0; i < rounds; i++ {
		if err := measure(true); err != nil {
			return CoalesceIdle{}, err
		}
	}
	p50 := func(lat []time.Duration) float64 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(lat[len(lat)/2]) / 1e3
	}
	dp, cp := p50(latD), p50(latC)
	ratio := 0.0
	if dp > 0 {
		ratio = cp / dp
	}
	return CoalesceIdle{
		GapUsec:          float64(idleGap) / 1e3,
		DirectP50Usec:    dp,
		CoalescedP50Usec: cp,
		Ratio:            ratio,
	}, nil
}

// runCoalesceSustained measures the send-side rate of an unpaced
// per-message SendBuf loop, bare versus coalesced. Fire-and-forget: the
// server drains (UDP may shed load on a busy machine, and send-side
// rate is the quantity the coalescer changes), and the clock stops
// after a final Flush so queued messages are not counted early.
func runCoalesceSustained(cfg CoalesceConfig) (CoalesceSustained, error) {
	direct, err := firehose(cfg, false)
	if err != nil {
		return CoalesceSustained{}, err
	}
	coalesced, err := firehose(cfg, true)
	if err != nil {
		return CoalesceSustained{}, err
	}
	speedup := 0.0
	if direct > 0 {
		speedup = coalesced / direct
	}
	return CoalesceSustained{
		Messages:            cfg.Messages,
		DirectMsgsPerSec:    direct,
		CoalescedMsgsPerSec: coalesced,
		Speedup:             speedup,
	}, nil
}

// drainConn discards everything the connection delivers until it
// closes.
func drainConn(ctx context.Context, conn core.Conn) {
	in := make([]*wire.Buf, 64)
	for {
		n, err := core.RecvBufs(ctx, conn, in)
		if err != nil {
			return
		}
		core.ReleaseAll(in[:n])
	}
}

func firehose(cfg CoalesceConfig, coalesced bool) (float64, error) {
	var cli core.Conn
	srvConn, err := func() (core.Conn, error) {
		if coalesced {
			col, srv, _, err := coalescedStackPair(core.CoalesceConfig{})
			cli = col
			return srv, err
		}
		c, srv, err := stackPair()
		cli = c
		return srv, err
	}()
	if err != nil {
		return 0, err
	}
	defer cli.Close()
	defer srvConn.Close()
	ctx := context.Background()
	go drainConn(ctx, srvConn)

	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(cli)
	send := func(n int) error {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		for i := 0; i < n; i++ {
			if err := core.SendBuf(sctx, cli, wire.NewBufFrom(headroom, payload)); err != nil {
				return err
			}
		}
		return core.Flush(sctx, cli)
	}
	warm := cfg.Messages / 10
	if warm < 64 {
		warm = 64
	}
	if err := send(warm); err != nil {
		return 0, err
	}
	t0 := time.Now()
	if err := send(cfg.Messages); err != nil {
		return 0, err
	}
	elapsed := time.Since(t0)
	return float64(cfg.Messages) / elapsed.Seconds(), nil
}

// runCoalesceSweepPoint paces sends at the given gap through a
// coalescer with an isolated registry and reports the achieved rate
// alongside the flush-reason mix and queue dwell p95.
func runCoalesceSweepPoint(cfg CoalesceConfig, gap time.Duration) (CoalesceSweepPoint, error) {
	col, srvConn, tel, err := coalescedStackPair(core.CoalesceConfig{})
	if err != nil {
		return CoalesceSweepPoint{}, err
	}
	defer col.Close()
	defer srvConn.Close()
	ctx := context.Background()
	go drainConn(ctx, srvConn)

	msgs := cfg.Messages / 4
	if msgs < 512 {
		msgs = 512
	}
	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(col)
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	t0 := time.Now()
	for i := 0; i < msgs; i++ {
		if err := col.SendBuf(sctx, wire.NewBufFrom(headroom, payload)); err != nil {
			return CoalesceSweepPoint{}, err
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	if err := col.Flush(sctx); err != nil {
		return CoalesceSweepPoint{}, err
	}
	elapsed := time.Since(t0)

	delayP95 := 0.0 // a fully-bypassed point has no dwell samples
	if h := tel.Histogram("coalesce/delay"); h.Count() > 0 {
		delayP95 = h.Snapshot().Quantile(0.95)
	}
	return CoalesceSweepPoint{
		GapUsec:           float64(gap) / 1e3,
		MsgsPerSec:        float64(msgs) / elapsed.Seconds(),
		DelayP95Usec:      delayP95,
		AdaptiveDelayUsec: float64(tel.Gauge("coalesce/adaptive_delay").Value()) / 1e3,
		Enqueued:          tel.Counter("coalesce/enqueued").Value(),
		IdleBypass:        tel.Counter("coalesce/idle_bypass").Value(),
		FlushSize:         tel.Counter("coalesce/flush_size").Value(),
		FlushTimer:        tel.Counter("coalesce/flush_timer").Value(),
		FlushExplicit:     tel.Counter("coalesce/flush_explicit").Value(),
	}, nil
}
