package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/kv"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/ycsb"
)

// Fig5Config parameterizes the sharding experiment.
type Fig5Config struct {
	// Requests is the total operation count per scenario and load level
	// (the paper runs 300000; the default is scaled for quick runs).
	Requests int
	// Clients is the number of load-generating clients (paper: 2).
	Clients int
	// Shards is the shard count (paper: 3, one thread per shard).
	Shards int
	// Records is the preloaded keyspace size.
	Records int
	// Concurrency sweeps the offered load: outstanding operations per
	// client (closed loop).
	Concurrency []int
	// ValueSize is the value payload size.
	ValueSize int
	// Seed drives the workload generators.
	Seed int64
}

func (c *Fig5Config) fill() {
	if c.Requests <= 0 {
		c.Requests = 30000
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Records <= 0 {
		c.Records = 1000
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{1, 4, 16, 64}
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// fig5Scenario configures one §5 sharding variant.
type fig5Scenario struct {
	name string
	// clientPush[i] controls whether client i links the push impl.
	clientPush func(i int) bool
	// registerXDP controls whether the server registers the XDP impl.
	registerXDP bool
	// policy optionally pins the server's selection policy.
	policy core.Policy
}

func fig5Scenarios(clients int) []fig5Scenario {
	return []fig5Scenario{
		{name: "client-push", clientPush: func(int) bool { return true }, registerXDP: true},
		{name: "server-xdp", clientPush: func(int) bool { return false }, registerXDP: true},
		{name: "mixed", clientPush: func(i int) bool { return i%2 == 0 }, registerXDP: true},
		{name: "server-fallback", clientPush: func(int) bool { return false }, registerXDP: false,
			policy: core.PreferImpl(shard.ImplServer)},
	}
}

// Fig5 runs the Figure 5 sharding experiment: a YCSB workload-A
// (50% read / 50% update), uniform-key load against a 3-shard key-value
// store from 2 clients, under four deployment scenarios:
//
//	client-push      — clients compute the shard and send directly
//	server-xdp       — the (simulated) XDP program steers at the server
//	mixed            — one client pushes, the other uses the server path
//	server-fallback  — a single userspace steering worker forwards
//
// For each offered-load level (outstanding ops per client) it reports
// achieved throughput and latency percentiles. The expected shape:
// client-push and server-xdp sustain load with flat p95; the
// server-fallback's single steering worker saturates first, its p95
// exploding at much lower throughput; mixed lands in between.
func Fig5(w io.Writer, cfg Fig5Config) error {
	cfg.fill()
	table := stats.NewTable(
		fmt.Sprintf("fig5: sharding — YCSB-A uniform, %d ops, %d clients, %d shards",
			cfg.Requests, cfg.Clients, cfg.Shards),
		"scenario", "outstanding", "ops/s", "p50 (µs)", "p95 (µs)", "p99 (µs)")

	for _, sc := range fig5Scenarios(cfg.Clients) {
		for _, conc := range cfg.Concurrency {
			opsPerSec, summary, err := fig5Run(cfg, sc, conc)
			if err != nil {
				return fmt.Errorf("fig5 %s (conc %d): %w", sc.name, conc, err)
			}
			table.AddRow(sc.name, conc, opsPerSec, summary.P50, summary.P95, summary.P99)
		}
	}
	table.Render(w)
	return nil
}

// fig5Run executes one (scenario, concurrency) cell and returns achieved
// throughput and the latency summary.
func fig5Run(cfg Fig5Config, sc fig5Scenario, conc int) (float64, stats.Summary, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pn := transport.NewPipeNetwork()
	srv, err := kv.NewServer(cfg.Shards)
	if err != nil {
		return 0, stats.Summary{}, err
	}
	defer srv.Close()

	var shardAddrs []core.Addr
	for i := 0; i < cfg.Shards; i++ {
		l, err := pn.Listen("srvhost", fmt.Sprintf("shard%d", i))
		if err != nil {
			return 0, stats.Summary{}, err
		}
		shardAddrs = append(shardAddrs, l.Addr())
		srv.ServeShard(i, l)
	}

	regS := bertha.NewRegistry()
	shard.RegisterServer(regS)
	if sc.registerXDP {
		shard.RegisterXDP(regS)
	}
	envS := bertha.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: pn})
	envS.Provide(shard.EnvQueues, srv.Queues())

	opts := []bertha.Option{bertha.WithRegistry(regS), bertha.WithEnv(envS)}
	if sc.policy != nil {
		opts = append(opts, bertha.WithPolicy(sc.policy))
	}
	srvEp, err := bertha.New("my-kv-srv",
		bertha.Wrap(bertha.Shard(shardAddrs, kv.ShardFunc(cfg.Shards))), opts...)
	if err != nil {
		return 0, stats.Summary{}, err
	}
	baseL, err := pn.Listen("srvhost", "kv")
	if err != nil {
		return 0, stats.Summary{}, err
	}
	nl, err := srvEp.Listen(ctx, baseL)
	if err != nil {
		return 0, stats.Summary{}, err
	}
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()

	// Preload.
	gen0, err := ycsb.NewGenerator(ycsb.Config{
		Workload: ycsb.WorkloadA, Records: cfg.Records,
		Dist: ycsb.Uniform, OverrideDist: true,
		ValueSize: cfg.ValueSize, Seed: cfg.Seed,
	})
	if err != nil {
		return 0, stats.Summary{}, err
	}
	if err := srv.Preload(gen0.InitialKeys(), bytes.Repeat([]byte{0xAB}, cfg.ValueSize)); err != nil {
		return 0, stats.Summary{}, err
	}

	// Clients.
	rec := stats.NewRecorder(cfg.Requests)
	clients := make([]*kv.Client, cfg.Clients)
	for i := range clients {
		regC := bertha.NewRegistry()
		if sc.clientPush(i) {
			shard.RegisterClient(regC)
		}
		envC := bertha.NewEnv(fmt.Sprintf("clihost%d", i))
		envC.SetDialer(&transport.MultiDialer{HostID: envC.Host, Pipe: pn})
		cliEp, err := bertha.New(fmt.Sprintf("kv-client-%d", i), bertha.Wrap(),
			bertha.WithRegistry(regC), bertha.WithEnv(envC))
		if err != nil {
			return 0, stats.Summary{}, err
		}
		raw, err := pn.DialFrom(ctx, envC.Host, core.Addr{Net: "pipe", Addr: "kv"})
		if err != nil {
			return 0, stats.Summary{}, err
		}
		conn, err := cliEp.Connect(ctx, raw)
		if err != nil {
			return 0, stats.Summary{}, err
		}
		clients[i] = kv.NewClient(conn)
		defer clients[i].Close()
	}

	perClient := cfg.Requests / cfg.Clients
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients*conc)
	start := time.Now()
	for i, cli := range clients {
		gen, err := ycsb.NewGenerator(ycsb.Config{
			Workload: ycsb.WorkloadA, Records: cfg.Records,
			Dist: ycsb.Uniform, OverrideDist: true,
			ValueSize: cfg.ValueSize, Seed: cfg.Seed + int64(i) + 1,
		})
		if err != nil {
			return 0, stats.Summary{}, err
		}
		var genMu sync.Mutex
		nextOp := func() ycsb.Op {
			genMu.Lock()
			defer genMu.Unlock()
			return gen.Next()
		}
		perWorker := perClient / conc
		for wkr := 0; wkr < conc; wkr++ {
			wg.Add(1)
			go func(cli *kv.Client) {
				defer wg.Done()
				for n := 0; n < perWorker; n++ {
					op := nextOp()
					t0 := time.Now()
					var err error
					switch op.Kind {
					case ycsb.Read:
						_, err = cli.Get(ctx, op.Key)
					default:
						err = cli.Update(ctx, op.Key, op.Value)
					}
					if err != nil {
						errCh <- err
						return
					}
					rec.Record(time.Since(t0))
				}
			}(cli)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, stats.Summary{}, err
	default:
	}
	opsPerSec := float64(rec.Count()) / elapsed.Seconds()
	return opsPerSec, rec.Summarize(), nil
}
