package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/crypt"
	"github.com/bertha-net/bertha/internal/chunnels/framing"
	"github.com/bertha-net/bertha/internal/chunnels/serialize"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// StackConfig parameterizes the zero-copy stack experiment.
type StackConfig struct {
	// Messages is the number of round trips measured per scenario.
	Messages int
	// Size is the request payload size in bytes.
	Size int
	// JSON selects machine-readable output (one JSON document instead
	// of the table).
	JSON bool
	// Telemetry adds an instrumented scenario (every layer of a
	// serialize→encrypt→http2→udp stack wrapped in the telemetry
	// recorder) and prints the per-layer latency attribution: each
	// chunnel's inclusive p50/p95 and its exclusive share of the send
	// path, the runtime's answer to "where does the time go".
	Telemetry bool
	// Tracing adds a traced scenario: the trace chunnel in the stack's
	// innermost slot, one request in traceSampleInterval stamped with an
	// in-band context, every layer recording spans into a shared ring.
	// The output reassembles the spans into per-message trees and prints
	// the waterfall plus a per-hop exclusive-latency attribution that
	// telescopes to the measured end-to-end latency — replacing the
	// quantile-subtraction heuristic of the Telemetry scenario.
	Tracing bool
}

func (c *StackConfig) fill() {
	if c.Messages <= 0 {
		c.Messages = 5000
	}
	if c.Size <= 0 {
		c.Size = 64
	}
}

// StackResult is one scenario's measurement: allocation cost per round
// trip alongside the latency distribution.
type StackResult struct {
	Scenario     string       `json:"scenario"`
	Messages     int          `json:"messages"`
	PayloadBytes int          `json:"payload_bytes"`
	AllocsPerOp  float64      `json:"allocs_per_op"`
	BytesPerOp   float64      `json:"bytes_per_op"`
	Latency      stackLatency `json:"latency_us"`
}

type stackLatency struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P5   float64 `json:"p5"`
	P25  float64 `json:"p25"`
	P50  float64 `json:"p50"`
	P75  float64 `json:"p75"`
	P95  float64 `json:"p95"`
}

func toStackLatency(s stats.Summary) stackLatency {
	return stackLatency{N: s.Count, Mean: s.Mean, P5: s.P5, P25: s.P25, P50: s.P50, P75: s.P75, P95: s.P95}
}

// Stack measures the pooled-buffer data plane: echo round trips over the
// serialize→framing→udp stack, once through the zero-copy SendBuf/RecvBuf
// path (headers prepended into headroom, one pooled buffer end to end)
// and once through the plain Send/Recv path (which copies at the
// ownership boundary). It reports allocations and bytes allocated per
// round trip next to the latency distribution — the cost the tentpole
// removes is visible as the allocs/op difference between the rows.
func Stack(w io.Writer, cfg StackConfig) error {
	cfg.fill()

	type scenario struct {
		name string
		run  func(cfg StackConfig) (StackResult, error)
	}
	scenarios := []scenario{
		{name: "zero-copy-bufs", run: runStackBufs},
		{name: "copy-per-message", run: runStackCopy},
	}
	var instrumented *telemetry.Registry
	if cfg.Telemetry {
		instrumented = telemetry.New()
		scenarios = append(scenarios, scenario{
			name: "instrumented-zero-copy",
			run: func(cfg StackConfig) (StackResult, error) {
				return runStackInstrumented(cfg, instrumented)
			},
		})
	}
	var traceOut *stackTrace
	if cfg.Tracing {
		scenarios = append(scenarios, scenario{
			name: "traced-zero-copy",
			run: func(cfg StackConfig) (StackResult, error) {
				res, out, err := runStackTraced(cfg, telemetry.New(), tracing.NewSpanRing(traceRingSize))
				traceOut = out
				return res, err
			},
		})
	}

	results := make([]StackResult, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := sc.run(cfg)
		if err != nil {
			return fmt.Errorf("stack %s: %w", sc.name, err)
		}
		res.Scenario = sc.name
		results = append(results, res)
	}

	if cfg.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		doc := map[string]any{"experiment": "stack", "results": results}
		if instrumented != nil {
			doc["telemetry"] = instrumented.Snapshot()
		}
		if traceOut != nil {
			doc["trace"] = traceOut
		}
		return enc.Encode(doc)
	}
	table := stats.NewTable(
		fmt.Sprintf("stack: echo round trip, serialize→http2→udp, %d-byte requests", cfg.Size),
		"scenario", "n", "allocs/op", "B/op", "p50 (µs)", "p95 (µs)")
	for _, r := range results {
		table.AddRow(r.Scenario, r.Messages, r.AllocsPerOp, r.BytesPerOp, r.Latency.P50, r.Latency.P95)
	}
	table.Render(w)
	if instrumented != nil {
		io.WriteString(w, "\n")
		writeAttribution(w, instrumented)
	}
	if traceOut != nil {
		io.WriteString(w, "\n")
		writeTracedAttribution(w, traceOut)
		writeTracedWaterfall(w, traceOut)
	}
	return nil
}

// stackTelemetryOrder is the instrumented stack outermost-first; the
// attribution table subtracts each layer's inner neighbour to turn the
// inclusive latencies into exclusive shares.
var stackTelemetryOrder = []struct{ chunnel, impl string }{
	{"serialize", "serialize/bincode"},
	{"encrypt", "encrypt/aesgcm"},
	{"http2", "http2/sw"},
	{"transport", "udp"},
}

// writeAttribution renders the per-chunnel send-latency attribution from
// an instrumented run: inclusive p50/p95 per layer, and each layer's
// exclusive p95 share (inclusive p95 minus the next layer in).
func writeAttribution(w io.Writer, reg *telemetry.Registry) {
	table := stats.NewTable(
		"stack: per-chunnel send-latency attribution (client side)",
		"chunnel", "impl", "sends", "incl p50 (µs)", "incl p95 (µs)", "excl p95 (µs)", "share")
	incl := make([]float64, len(stackTelemetryOrder))
	snaps := make([]telemetry.HistogramSnapshot, len(stackTelemetryOrder))
	for i, l := range stackTelemetryOrder {
		snaps[i] = reg.Conn(l.chunnel, l.impl).SendLatency.Snapshot()
		incl[i] = snaps[i].Quantile(0.95)
	}
	total := incl[0]
	for i, l := range stackTelemetryOrder {
		excl := incl[i]
		if i+1 < len(incl) {
			excl -= incl[i+1]
		}
		if excl < 0 {
			excl = 0 // quantile subtraction can go slightly negative
		}
		share := 0.0
		if total > 0 {
			share = excl / total
		}
		table.AddRow(l.chunnel, l.impl, snaps[i].Count,
			snaps[i].Quantile(0.50), incl[i], excl, fmt.Sprintf("%.0f%%", share*100))
	}
	table.Render(w)
}

// stackPair builds the serialize→framing→udp stack on both ends of a
// connected loopback UDP pair (connected sockets keep the receive path
// allocation-free; the demux listener would pay a source address per
// datagram).
func stackPair() (cli, srv core.Conn, err error) {
	a, b, err := transport.UDPPair("cli", "srv")
	if err != nil {
		return nil, nil, err
	}
	wrap := func(c core.Conn) (core.Conn, error) {
		f, err := framing.New(c, framing.DefaultMaxFrame)
		if err != nil {
			return nil, err
		}
		return serialize.New(f, serialize.FormatBincode)
	}
	if cli, err = wrap(a); err != nil {
		a.Close()
		b.Close()
		return nil, nil, err
	}
	if srv, err = wrap(b); err != nil {
		cli.Close()
		b.Close()
		return nil, nil, err
	}
	return cli, srv, nil
}

// measureStack runs warmup + cfg.Messages round trips and samples the
// allocator around the measured window.
func measureStack(cfg StackConfig, roundTrip func() error) (StackResult, error) {
	warm := cfg.Messages / 10
	if warm < 10 {
		warm = 10
	}
	for i := 0; i < warm; i++ {
		if err := roundTrip(); err != nil {
			return StackResult{}, err
		}
	}

	rec := stats.NewRecorder(cfg.Messages)
	runtime.GC() // settle the allocator so the malloc delta is ours
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < cfg.Messages; i++ {
		t0 := time.Now()
		if err := roundTrip(); err != nil {
			return StackResult{}, err
		}
		rec.Record(time.Since(t0))
	}
	runtime.ReadMemStats(&m1)

	// The recorder's sample array is pre-allocated before the window, so
	// the malloc delta is the data path's alone.
	n := float64(cfg.Messages)
	return StackResult{
		Messages:     cfg.Messages,
		PayloadBytes: cfg.Size,
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:   float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Latency:      toStackLatency(rec.Summarize()),
	}, nil
}

// runStackBufs measures the zero-copy path: pooled buffers all the way,
// headers prepended into reserved headroom, echo without copying.
func runStackBufs(cfg StackConfig) (StackResult, error) {
	cli, srv, err := stackPair()
	if err != nil {
		return StackResult{}, err
	}
	defer cli.Close()
	defer srv.Close()
	ctx := context.Background()
	go func() {
		for {
			b, err := core.RecvBuf(ctx, srv)
			if err != nil {
				return
			}
			if core.SendBuf(ctx, srv, b) != nil {
				return
			}
		}
	}()

	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(cli)
	return measureStack(cfg, func() error {
		b := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, b); err != nil {
			return err
		}
		r, err := core.RecvBuf(ctx, cli)
		if err != nil {
			return err
		}
		r.Release()
		return nil
	})
}

// stackPairInstrumented builds a serialize→encrypt→http2→udp stack with
// every layer wrapped in the telemetry recorder, mirroring what
// core.assemble does to negotiated stacks. Only the client side records
// into reg so the attribution reflects one direction.
func stackPairInstrumented(reg *telemetry.Registry) (cli, srv core.Conn, err error) {
	a, b, err := transport.UDPPair("cli", "srv")
	if err != nil {
		return nil, nil, err
	}
	key := []byte("bench-attribution-key")
	wrap := func(c core.Conn, record bool) (core.Conn, error) {
		inst := func(conn core.Conn, chunnel, impl string) core.Conn {
			if !record {
				return conn
			}
			return core.Instrument(conn, reg.Conn(chunnel, impl))
		}
		c = inst(c, "transport", "udp")
		f, err := framing.New(c, framing.DefaultMaxFrame)
		if err != nil {
			return nil, err
		}
		e, err := crypt.New(inst(f, "http2", "http2/sw"), key)
		if err != nil {
			return nil, err
		}
		s, err := serialize.New(inst(e, "encrypt", "encrypt/aesgcm"), serialize.FormatBincode)
		if err != nil {
			return nil, err
		}
		return inst(s, "serialize", "serialize/bincode"), nil
	}
	if cli, err = wrap(a, true); err != nil {
		a.Close()
		b.Close()
		return nil, nil, err
	}
	if srv, err = wrap(b, false); err != nil {
		cli.Close()
		b.Close()
		return nil, nil, err
	}
	return cli, srv, nil
}

// runStackInstrumented measures the zero-copy path with the full
// telemetry stack enabled; the delta against zero-copy-bufs is the
// observability overhead, and reg afterwards holds the per-layer
// attribution.
func runStackInstrumented(cfg StackConfig, reg *telemetry.Registry) (StackResult, error) {
	cli, srv, err := stackPairInstrumented(reg)
	if err != nil {
		return StackResult{}, err
	}
	defer cli.Close()
	defer srv.Close()
	ctx := context.Background()
	go func() {
		for {
			b, err := core.RecvBuf(ctx, srv)
			if err != nil {
				return
			}
			if core.SendBuf(ctx, srv, b) != nil {
				return
			}
		}
	}()

	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(cli)
	return measureStack(cfg, func() error {
		b := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, b); err != nil {
			return err
		}
		r, err := core.RecvBuf(ctx, cli)
		if err != nil {
			return err
		}
		r.Release()
		return nil
	})
}

// runStackCopy measures the plain []byte path: Send/Recv on the same
// stack, paying a copy (and allocation) at each ownership boundary.
func runStackCopy(cfg StackConfig) (StackResult, error) {
	cli, srv, err := stackPair()
	if err != nil {
		return StackResult{}, err
	}
	defer cli.Close()
	defer srv.Close()
	ctx := context.Background()
	go func() {
		for {
			m, err := srv.Recv(ctx)
			if err != nil {
				return
			}
			if srv.Send(ctx, m) != nil {
				return
			}
		}
	}()

	payload := make([]byte, cfg.Size)
	return measureStack(cfg, func() error {
		if err := cli.Send(ctx, payload); err != nil {
			return err
		}
		_, err := cli.Recv(ctx)
		return err
	})
}
