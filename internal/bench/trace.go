package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/framing"
	"github.com/bertha-net/bertha/internal/chunnels/serialize"
	"github.com/bertha-net/bertha/internal/chunnels/traced"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// traceSampleInterval is the bench sampling rate: one request in this
// many carries a trace context end to end.
const traceSampleInterval = 16

// traceRingSize holds the full sampled volume of a default run (5000
// messages / 16 sampled × ~8 spans each) without wrapping.
const traceRingSize = 8192

// stackTrace is the traced scenario's reassembly report: how many
// sampled requests produced a complete client→server span tree, and how
// close the tree's per-hop exclusive latencies come to the end-to-end
// latency measured independently at the application layer. A mean ratio
// near 1.0 is the tentpole's acceptance bar — attribution accounts for
// the whole journey, not a subtraction heuristic's approximation of it.
type stackTrace struct {
	SampleInterval int     `json:"sample_interval"`
	SampledSends   int     `json:"sampled_sends"`
	CompleteTrees  int     `json:"complete_trees"`
	MeanRatio      float64 `json:"mean_attribution_ratio"`
	SpanTotal      uint64  `json:"span_total"`

	trees []tracing.Tree
}

// stackPairTraced builds the traced echo stack on both ends: the trace
// chunnel sits in the innermost slot (directly above the transport),
// exactly where negotiation pins it, with every layer's instrument
// wrapper recording spans into one shared ring so the single-process
// bench can reassemble full trees. Client layers record metrics into
// reg; the server side keeps its own throwaway registry.
func stackPairTraced(reg *telemetry.Registry, ring *tracing.SpanRing) (cli, srv core.Conn, err error) {
	a, b, err := transport.UDPPair("cli", "srv")
	if err != nil {
		return nil, nil, err
	}
	srvReg := telemetry.New()
	wrap := func(c core.Conn, r *telemetry.Registry) (core.Conn, error) {
		inst := func(conn core.Conn, chunnel, impl string) core.Conn {
			return core.InstrumentTraced(conn, r.Conn(chunnel, impl), ring.Handle(chunnel, impl))
		}
		c = inst(c, "transport", "udp")
		c = inst(traced.New(c, ring), "trace", core.TraceImplName)
		f, err := framing.New(c, framing.DefaultMaxFrame)
		if err != nil {
			return nil, err
		}
		s, err := serialize.New(inst(f, "http2", "http2/sw"), serialize.FormatBincode)
		if err != nil {
			return nil, err
		}
		return inst(s, "serialize", "serialize/bincode"), nil
	}
	if cli, err = wrap(a, reg); err != nil {
		a.Close()
		b.Close()
		return nil, nil, err
	}
	if srv, err = wrap(b, srvReg); err != nil {
		cli.Close()
		b.Close()
		return nil, nil, err
	}
	return cli, srv, nil
}

// runStackTraced measures the zero-copy path with in-band tracing live:
// every traceSampleInterval-th request is stamped with a fresh trace ID
// and timed independently at the application layer (t0 at send, t1 when
// the echo server's top of stack sees it). After the run the span ring
// is reassembled into trees and each complete tree's Σexclusive is
// compared against its independently measured end-to-end latency.
func runStackTraced(cfg StackConfig, reg *telemetry.Registry, ring *tracing.SpanRing) (StackResult, *stackTrace, error) {
	cli, srv, err := stackPairTraced(reg, ring)
	if err != nil {
		return StackResult{}, nil, err
	}
	defer cli.Close()
	defer srv.Close()
	ctx := context.Background()

	var mu sync.Mutex
	t0s := map[uint64]time.Time{}
	t1s := map[uint64]time.Time{}
	go func() {
		for {
			b, err := core.RecvBuf(ctx, srv)
			if err != nil {
				return
			}
			if id, _, _, ok := b.Trace(); ok {
				now := time.Now()
				mu.Lock()
				t1s[id] = now
				mu.Unlock()
				// The reply direction is not part of the traced request's
				// journey; echo it unsampled.
				b.ClearTrace()
			}
			if core.SendBuf(ctx, srv, b) != nil {
				return
			}
		}
	}()

	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(cli)
	sent, sampled := 0, 0
	res, err := measureStack(cfg, func() error {
		b := wire.NewBufFrom(headroom, payload)
		sent++
		if sent%traceSampleInterval == 1 {
			id := tracing.NewTraceID()
			b.SetTrace(id, 0, 0)
			sampled++
			// Pre-insert the key so any map growth happens before t0 is
			// captured; the measured end-to-end then excludes the bench's
			// own bookkeeping overhead.
			mu.Lock()
			t0s[id] = time.Time{}
			t0s[id] = time.Now()
			mu.Unlock()
		}
		if err := core.SendBuf(ctx, cli, b); err != nil {
			return err
		}
		r, err := core.RecvBuf(ctx, cli)
		if err != nil {
			return err
		}
		r.Release()
		return nil
	})
	if err != nil {
		return StackResult{}, nil, err
	}

	trees := tracing.BuildTrees(ring.Snapshot())
	out := &stackTrace{
		SampleInterval: traceSampleInterval,
		SampledSends:   sampled,
		SpanTotal:      ring.Total(),
		trees:          trees,
	}
	ratioSum := 0.0
	mu.Lock()
	defer mu.Unlock()
	for _, tr := range trees {
		if !tr.Complete {
			continue
		}
		t0, ok0 := t0s[tr.TraceID]
		t1, ok1 := t1s[tr.TraceID]
		if !ok0 || !ok1 || !t1.After(t0) {
			continue
		}
		out.CompleteTrees++
		ratioSum += float64(tr.ExclSum) / float64(t1.Sub(t0).Nanoseconds())
	}
	if out.CompleteTrees > 0 {
		out.MeanRatio = ratioSum / float64(out.CompleteTrees)
	}
	return res, out, nil
}

// writeTracedAttribution renders the traced run's per-hop latency
// attribution from reassembled span trees: each hop's mean exclusive
// latency and its share of the mean end-to-end, measured by telescoping
// real per-message spans instead of subtracting aggregate quantiles
// (the heuristic writeAttribution falls back to without tracing).
func writeTracedAttribution(w io.Writer, out *stackTrace) {
	type agg struct {
		kind, layer, impl string
		sumExcl           int64
		n                 int
	}
	var order []string
	byKey := map[string]*agg{}
	var e2eSum int64
	complete := 0
	for _, tr := range out.trees {
		if !tr.Complete {
			continue
		}
		complete++
		e2eSum += tr.EndToEnd
		for _, h := range tr.Hops {
			key := h.KindName + "/" + h.Layer + "/" + h.Impl
			a, ok := byKey[key]
			if !ok {
				a = &agg{kind: h.KindName, layer: h.Layer, impl: h.Impl}
				byKey[key] = a
				order = append(order, key)
			}
			a.sumExcl += h.Excl
			a.n++
		}
	}
	if complete == 0 {
		fmt.Fprintf(w, "stack: tracing enabled but no complete trees reassembled (%d spans recorded)\n", out.SpanTotal)
		return
	}
	meanE2E := float64(e2eSum) / float64(complete) / 1e3
	table := stats.NewTable(
		fmt.Sprintf("stack: traced per-hop exclusive latency attribution (%d complete trees, mean end-to-end %.1f µs, Σexcl/measured = %.3f)",
			complete, meanE2E, out.MeanRatio),
		"hop", "layer", "impl", "spans", "mean excl (µs)", "share")
	for _, key := range order {
		a := byKey[key]
		mean := float64(a.sumExcl) / float64(a.n) / 1e3
		share := 0.0
		if meanE2E > 0 {
			share = mean / meanE2E
		}
		table.AddRow(a.kind, a.layer, a.impl, a.n, mean, fmt.Sprintf("%.0f%%", share*100))
	}
	table.Render(w)
}

// writeTracedWaterfall prints the most recent complete tree's timeline.
func writeTracedWaterfall(w io.Writer, out *stackTrace) {
	for _, tr := range out.trees {
		if tr.Complete {
			io.WriteString(w, "\n")
			tr.WriteWaterfall(w)
			return
		}
	}
}
