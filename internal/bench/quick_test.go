package bench

import (
	"os"
	"testing"
	"time"
)

// Quick smoke runs of the experiment harnesses (scaled-down configs);
// the full-size runs live in cmd/bertha-bench and bench_test.go.
func TestFig5Quick(t *testing.T) {
	cfg := Fig5Config{Requests: 2000, Concurrency: []int{4}}
	if err := Fig5(os.Stderr, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Quick(t *testing.T) {
	cfg := Fig4Config{Duration: 2 * time.Second, LocalStartAt: time.Second, Interval: 50 * time.Millisecond}
	if err := Fig4(os.Stderr, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOptQuick(t *testing.T) {
	Fig2(os.Stderr)
	if err := Opt(os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusQuick(t *testing.T) {
	if err := Consensus(os.Stderr, ConsensusConfig{Ops: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStackQuick(t *testing.T) {
	if err := Stack(os.Stderr, StackConfig{Messages: 200}); err != nil {
		t.Fatal(err)
	}
	if err := Stack(os.Stderr, StackConfig{Messages: 200, JSON: true}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionsQuick(t *testing.T) {
	cfg := ConnectionsConfig{Counts: []int{64, 256}, Ops: 2000, Window: 32}
	if err := Connections(os.Stderr, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.JSON = true
	if err := Connections(os.Stderr, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceQuick(t *testing.T) {
	if err := Coalesce(os.Stderr, CoalesceConfig{Messages: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := Coalesce(os.Stderr, CoalesceConfig{Messages: 1024, JSON: true}); err != nil {
		t.Fatal(err)
	}
}
