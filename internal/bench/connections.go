package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// ConnectionsConfig parameterizes the connection-scaling experiment.
type ConnectionsConfig struct {
	// Counts is the connection-count sweep.
	Counts []int
	// Ops is the number of measured request/response operations per
	// count. 0 selects max(2×conns, 20000) so every connection is
	// exercised at least twice.
	Ops int
	// Window is the number of requests kept in flight (closed loop),
	// clamped to the connection count so no connection ever has two
	// outstanding requests.
	Window int
	// Shards is the reactor width; 0 selects runtime.GOMAXPROCS(0).
	Shards int
	// RingSize is the per-connection receive ring capacity; 0 selects
	// 64, which bounds steady-state memory at 100k connections while
	// leaving 64× slack over the window's ≤1 message per connection.
	RingSize int
	// PayloadBytes is the request payload size (min 8).
	PayloadBytes int
	// JSON selects machine-readable output.
	JSON bool
}

func (c *ConnectionsConfig) fill() {
	if len(c.Counts) == 0 {
		c.Counts = []int{1000, 10000}
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.PayloadBytes < 8 {
		c.PayloadBytes = 16
	}
}

// ConnectionsResult is one connection count's measurement: latency
// percentiles under a fixed-window closed loop, sustained throughput,
// allocation behavior on the reactor hot path, and the goroutine and
// memory accounting that answers "what does a connection cost".
type ConnectionsResult struct {
	Conns             int     `json:"conns"`
	Ops               int     `json:"ops"`
	Window            int     `json:"window"`
	PayloadBytes      int     `json:"payload_bytes"`
	P50Micros         float64 `json:"p50_usec"`
	P95Micros         float64 `json:"p95_usec"`
	P99Micros         float64 `json:"p99_usec"`
	MsgsPerSec        float64 `json:"msgs_per_sec"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	AllocsTotal       uint64  `json:"allocs_total"`
	Shards            int     `json:"shards"`
	RingSize          int     `json:"ring_size"`
	ReactorGoroutines int64   `json:"reactor_goroutines"`
	ProcessGoroutines int     `json:"process_goroutines"`
	ConnMemBytes      int64   `json:"conn_mem_bytes"`
	MemPerConnBytes   int64   `json:"mem_per_conn_bytes"`
	RingOccupied      int64   `json:"ring_occupied"`
	DroppedQueueFull  uint64  `json:"dropped_queue_full"`
	DroppedAccept     uint64  `json:"dropped_accept"`
	DroppedMalformed  uint64  `json:"dropped_malformed"`
}

// Connections measures the sharded reactor runtime's connection
// scaling: an in-memory datagram socket (so the sweep reaches 100k
// simulated clients without fd limits or kernel socket buffers skewing
// the numbers) feeds one reactor listener, every client connects, and a
// fixed-window closed loop round-robins echo requests across all
// connections. Because the window is constant, per-operation work is
// what's under test as the table grows 1k→100k: demux lookup, ring
// delivery, and readiness scheduling must stay O(1) per message, so the
// p95 at 100k should sit within a small factor of the 1k baseline while
// goroutines stay O(shards) and memory O(conns × ring).
func Connections(w io.Writer, cfg ConnectionsConfig) error {
	cfg.fill()
	results := make([]ConnectionsResult, 0, len(cfg.Counts))
	for _, conns := range cfg.Counts {
		if conns <= 0 {
			return fmt.Errorf("connections: invalid count %d", conns)
		}
		r, err := runConnections(cfg, conns)
		if err != nil {
			return fmt.Errorf("connections conns=%d: %w", conns, err)
		}
		results = append(results, r)
	}

	if cfg.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiment": "connections", "results": results})
	}
	table := stats.NewTable(
		fmt.Sprintf("connections: reactor echo sweep, window %d, ring %d", cfg.Window, cfg.RingSize),
		"conns", "ops", "p50 µs", "p95 µs", "p99 µs", "msg/s", "allocs/op", "mem/conn", "goroutines")
	for _, r := range results {
		table.AddRow(r.Conns, r.Ops,
			fmt.Sprintf("%.1f", r.P50Micros),
			fmt.Sprintf("%.1f", r.P95Micros),
			fmt.Sprintf("%.1f", r.P99Micros),
			fmt.Sprintf("%.0f", r.MsgsPerSec),
			r.AllocsPerOp,
			fmt.Sprintf("%dB", r.MemPerConnBytes),
			fmt.Sprintf("%d+%d", r.ReactorGoroutines, int64(r.ProcessGoroutines)-r.ReactorGoroutines))
	}
	table.Render(w)
	return nil
}

// runConnections drives one sweep point end to end: connect phase
// (hello per client, each accepted before the next is sent, so the
// accept backlog never overflows), O(shards) echo workers on the
// Ready/Rearm protocol, a warm-up window, then the measured closed
// loop with runtime.MemStats bracketing for the allocs/op account.
func runConnections(cfg ConnectionsConfig, conns int) (ConnectionsResult, error) {
	var r ConnectionsResult
	ops := cfg.Ops
	if ops <= 0 {
		ops = 2 * conns
		if ops < 20000 {
			ops = 20000
		}
	}
	window := cfg.Window
	if window > conns {
		window = conns
	}

	reg := telemetry.Default()
	queueFull0 := reg.Counter("transport/mem/datagrams_dropped_queue_full").Value()
	acceptDrop0 := reg.Counter("transport/mem/accept_dropped").Value()
	malformed0 := reg.Counter("transport/mem/datagrams_dropped_malformed").Value()

	mem := newMemPacketConn(window + 256)
	completions := make(chan int, window+256)
	mem.onWrite = func(ap netip.AddrPort, _ []byte) {
		select {
		case completions <- clientIndex(ap):
		case <-mem.closed:
		}
	}

	l := transport.NewPacketListener(mem, core.Addr{Net: "mem", Addr: "bench"},
		core.ReactorConfig{Shards: cfg.Shards, RingSize: cfg.RingSize})
	defer l.Close()
	shards := l.Shards() // forces the lazy reactor start

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Per-client state, preallocated so the measured loop allocates
	// nothing: source address, a reusable request payload (safe to
	// reuse because a client never has two requests outstanding and
	// the reactor copies the payload into a pooled buffer before the
	// echo can complete), and the request start time.
	addrs := make([]netip.AddrPort, conns)
	payloads := make([][]byte, conns)
	t0s := make([]time.Time, conns)
	for i := range addrs {
		addrs[i] = clientAddr(i)
		payloads[i] = make([]byte, cfg.PayloadBytes)
	}

	// Connect: one hello per client, accepted synchronously — the
	// accept backlog holds at most one connection at a time, so no
	// client is ever turned away and no retransmit logic is needed.
	for i := 0; i < conns; i++ {
		mem.inject(addrs[i], payloads[i])
		if _, err := l.Accept(ctx); err != nil {
			return r, fmt.Errorf("connect %d/%d: %w", i, conns, err)
		}
	}

	// Echo workers: O(shards) goroutines serving every connection via
	// the readiness protocol. The hellos queued during connect are the
	// first edges they serve.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			scratch := make([]*wire.Buf, 64)
			for {
				conn, err := l.Ready(ctx, shard)
				if err != nil {
					return
				}
				bc := conn.(core.BatchConn)
				n, err := bc.RecvBufs(ctx, scratch)
				if err != nil {
					if errors.Is(err, core.ErrClosed) {
						continue
					}
					return
				}
				if err := bc.SendBufs(ctx, scratch[:n]); err != nil {
					return
				}
				l.Rearm(conn)
			}
		}(s)
	}
	defer wg.Wait()
	defer mem.Close()
	defer cancel()

	// The workers echo every hello; drain those completions so the
	// measured loop starts from a quiet network.
	for i := 0; i < conns; i++ {
		select {
		case <-completions:
		case <-ctx.Done():
			return r, ctx.Err()
		}
	}

	next := 0
	inject := func() {
		i := next
		next++
		if next == conns {
			next = 0
		}
		t0s[i] = time.Now()
		mem.inject(addrs[i], payloads[i])
	}
	runLoop := func(n int, rec *stats.Recorder) error {
		injected, completed := 0, 0
		for injected < window && injected < n {
			inject()
			injected++
		}
		for completed < n {
			select {
			case idx := <-completions:
				if rec != nil {
					rec.Record(time.Since(t0s[idx]))
				}
				completed++
				if injected < n {
					inject()
					injected++
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}

	// Warm-up: fills the shard-local buffer pools and the ready-queue
	// backing arrays so the measured loop sees steady state.
	warm := 4 * window
	if warm > ops {
		warm = ops
	}
	if err := runLoop(warm, nil); err != nil {
		return r, err
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	rec := stats.NewRecorder(ops)
	start := time.Now()
	if err := runLoop(ops, rec); err != nil {
		return r, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	st := l.ReactorStats()
	if st.Conns != int64(conns) {
		return r, fmt.Errorf("expected %d live conns, reactor accounts %d", conns, st.Conns)
	}
	allocs := m1.Mallocs - m0.Mallocs
	r = ConnectionsResult{
		Conns:             conns,
		Ops:               ops,
		Window:            window,
		PayloadBytes:      cfg.PayloadBytes,
		P50Micros:         rec.Percentile(50),
		P95Micros:         rec.Percentile(95),
		P99Micros:         rec.Percentile(99),
		MsgsPerSec:        float64(ops) / elapsed.Seconds(),
		AllocsPerOp:       int64(allocs) / int64(ops),
		AllocsTotal:       allocs,
		Shards:            st.Shards,
		RingSize:          st.RingSize,
		ReactorGoroutines: st.Goroutines,
		ProcessGoroutines: runtime.NumGoroutine(),
		ConnMemBytes:      st.ConnMemBytes,
		MemPerConnBytes:   st.ConnMemBytes / st.Conns,
		RingOccupied:      st.RingOccupied,
		DroppedQueueFull:  reg.Counter("transport/mem/datagrams_dropped_queue_full").Value() - queueFull0,
		DroppedAccept:     reg.Counter("transport/mem/accept_dropped").Value() - acceptDrop0,
		DroppedMalformed:  reg.Counter("transport/mem/datagrams_dropped_malformed").Value() - malformed0,
	}
	return r, nil
}

// memPacketConn is the in-memory datagram socket under the reactor: an
// inbound channel stands in for the kernel receive queue, and writes
// (the server's echoes) are handed to the harness's onWrite sink. It
// implements transport.AddrPortPacketConn, so the reactor runs its
// allocation-free source-addressed receive path over it.
type memPacketConn struct {
	local   netip.AddrPort
	inbound chan memDatagram
	closed  chan struct{}
	once    sync.Once
	onWrite func(dst netip.AddrPort, p []byte)
}

type memDatagram struct {
	payload []byte
	src     netip.AddrPort
}

func newMemPacketConn(backlog int) *memPacketConn {
	return &memPacketConn{
		local:   netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 4242),
		inbound: make(chan memDatagram, backlog),
		closed:  make(chan struct{}),
	}
}

// inject delivers one client datagram into the socket's receive queue.
// The payload is copied by the reactor's read before the echo can come
// back, so callers may reuse it once the response completes.
func (m *memPacketConn) inject(src netip.AddrPort, p []byte) {
	select {
	case m.inbound <- memDatagram{payload: p, src: src}:
	case <-m.closed:
	}
}

func (m *memPacketConn) ReadFromAddrPort(p []byte) (int, netip.AddrPort, error) {
	select {
	case d := <-m.inbound:
		return copy(p, d.payload), d.src, nil
	case <-m.closed:
		return 0, netip.AddrPort{}, net.ErrClosed
	}
}

func (m *memPacketConn) WriteToAddrPort(p []byte, ap netip.AddrPort) (int, error) {
	select {
	case <-m.closed:
		return 0, net.ErrClosed
	default:
	}
	m.onWrite(ap, p)
	return len(p), nil
}

func (m *memPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	n, ap, err := m.ReadFromAddrPort(p)
	if err != nil {
		return 0, nil, err
	}
	return n, net.UDPAddrFromAddrPort(ap), nil
}

func (m *memPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, fmt.Errorf("mem: unsupported address type %T", addr)
	}
	return m.WriteToAddrPort(p, ua.AddrPort())
}

func (m *memPacketConn) Close() error {
	m.once.Do(func() { close(m.closed) })
	return nil
}

func (m *memPacketConn) LocalAddr() net.Addr { return net.UDPAddrFromAddrPort(m.local) }

func (m *memPacketConn) SetReadDeadline(time.Time) error { return nil }

// clientAddr encodes client i as a unique source address: the index
// rides in the lower three octets of a 10.0.0.0/8 address, which both
// keys the reactor's peer table and lets the write path recover the
// index without any per-datagram state.
func clientAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(
		netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}), 40000)
}

// clientIndex inverts clientAddr.
func clientIndex(ap netip.AddrPort) int {
	a := ap.Addr().As4()
	return int(a[1])<<16 | int(a[2])<<8 | int(a[3])
}
