// Package bench implements the experiment harness: for every table and
// figure in the paper's evaluation (§5), a function that builds the
// workload, runs the parameter sweep, and prints the same rows or series
// the paper plots. cmd/bertha-bench drives it; bench_test.go wraps each
// experiment as a testing.B benchmark.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/chunnels/localfast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/transport"
)

// Fig3Config parameterizes the container-networking experiment.
type Fig3Config struct {
	// Connections is how many connections each scenario establishes
	// (the paper uses 10000; the default is scaled for quick runs).
	Connections int
	// RequestsPerConn is the number of ping requests per connection
	// (the paper measures 3).
	RequestsPerConn int
	// Sizes are the request payload sizes swept.
	Sizes []int
	// Dir is where UNIX sockets are created (defaults to a temp dir).
	Dir string
}

func (c *Fig3Config) fill() {
	if c.Connections <= 0 {
		c.Connections = 200
	}
	if c.RequestsPerConn <= 0 {
		c.RequestsPerConn = 3
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{128, 1024, 8192, 32768}
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
}

// fig3Scenario measures one transport configuration.
type fig3Scenario struct {
	name string
	// setup returns a connect function (fresh connection per call) and
	// a cleanup.
	setup func(ctx context.Context, cfg Fig3Config) (connect func(ctx context.Context) (core.Conn, error), cleanup func(), err error)
}

// Fig3 runs the Figure 3 experiment: RPC latency between two processes
// on the same host over (a) the network stack (loopback UDP), (b)
// hardcoded UNIX sockets (the specialized implementation), and (c) a
// Bertha connection with the local_or_remote chunnel, which negotiates
// per connection and then uses UNIX sockets. The output reports the
// boxplot rows of the paper's plot (p5/p25/p50/p75/p95 per request
// size) plus connection-establishment cost (Bertha pays two extra round
// trips: discovery and negotiation).
func Fig3(w io.Writer, cfg Fig3Config) error {
	cfg.fill()
	ctx := context.Background()

	scenarios := []fig3Scenario{
		{name: "udp-network-stack", setup: fig3UDP},
		{name: "unix-hardcoded", setup: fig3Unix},
		{name: "bertha-localfast", setup: fig3Bertha},
	}

	latTables := map[int]*stats.Table{}
	for _, size := range cfg.Sizes {
		latTables[size] = stats.NewTable(
			fmt.Sprintf("fig3: RPC latency, %d-byte requests (µs)", size),
			"scenario", "n", "p5", "p25", "p50", "p75", "p95")
	}
	estTable := stats.NewTable("fig3: connection establishment (µs)",
		"scenario", "n", "p5", "p25", "p50", "p75", "p95")

	for _, sc := range scenarios {
		connect, cleanup, err := sc.setup(ctx, cfg)
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", sc.name, err)
		}
		est := stats.NewRecorder(cfg.Connections)
		recs := map[int]*stats.Recorder{}
		for _, size := range cfg.Sizes {
			recs[size] = stats.NewRecorder(cfg.Connections * cfg.RequestsPerConn)
		}
		// Warm up (socket buffers, scheduler, allocator) before recording.
		warm := cfg.Connections / 10
		if warm < 5 {
			warm = 5
		}
		for c := 0; c < warm; c++ {
			conn, err := connect(ctx)
			if err != nil {
				cleanup()
				return fmt.Errorf("fig3 %s warmup: %w", sc.name, err)
			}
			conn.Send(ctx, []byte("warmup"))
			conn.Recv(ctx)
			conn.Close()
		}
		for _, size := range cfg.Sizes {
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			for c := 0; c < cfg.Connections; c++ {
				t0 := time.Now()
				conn, err := connect(ctx)
				if err != nil {
					cleanup()
					return fmt.Errorf("fig3 %s connect %d: %w", sc.name, c, err)
				}
				est.Record(time.Since(t0))
				for r := 0; r < cfg.RequestsPerConn; r++ {
					t1 := time.Now()
					if err := conn.Send(ctx, payload); err != nil {
						conn.Close()
						cleanup()
						return fmt.Errorf("fig3 %s send: %w", sc.name, err)
					}
					if _, err := conn.Recv(ctx); err != nil {
						conn.Close()
						cleanup()
						return fmt.Errorf("fig3 %s recv: %w", sc.name, err)
					}
					recs[size].Record(time.Since(t1))
				}
				conn.Close()
			}
		}
		cleanup()
		for _, size := range cfg.Sizes {
			latTables[size].AddRow(stats.BoxplotRow(sc.name, recs[size].Summarize())...)
		}
		estTable.AddRow(stats.BoxplotRow(sc.name, est.Summarize())...)
	}

	for _, size := range cfg.Sizes {
		latTables[size].Render(w)
		fmt.Fprintln(w)
	}
	estTable.Render(w)
	return nil
}

// echoListener serves echo on every accepted connection.
func echoListener(ctx context.Context, l core.Listener) {
	go func() {
		for {
			conn, err := l.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn core.Conn) {
				defer conn.Close()
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					if err := conn.Send(ctx, m); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// fig3UDP: loopback UDP — every byte traverses the kernel network stack.
func fig3UDP(ctx context.Context, cfg Fig3Config) (func(ctx context.Context) (core.Conn, error), func(), error) {
	l, err := transport.ListenUDP("host0", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	echoListener(sctx, l)
	addr := l.Addr().Addr
	connect := func(ctx context.Context) (core.Conn, error) {
		return transport.DialUDP("host0", addr)
	}
	return connect, func() { cancel(); l.Close() }, nil
}

// fig3Unix: UNIX datagram sockets hardcoded — the specialized
// implementation an application would write by hand.
func fig3Unix(ctx context.Context, cfg Fig3Config) (func(ctx context.Context) (core.Conn, error), func(), error) {
	path := filepath.Join(cfg.Dir, fmt.Sprintf("bertha-fig3-%d.sock", os.Getpid()))
	l, err := transport.ListenUnix("host0", path)
	if err != nil {
		return nil, nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	echoListener(sctx, l)
	connect := func(ctx context.Context) (core.Conn, error) {
		return transport.DialUnix("host0", path)
	}
	return connect, func() { cancel(); l.Close() }, nil
}

// fig3Bertha: a Bertha endpoint with the local_or_remote chunnel. The
// canonical address is UDP; negotiation discovers both sides share a
// host and splices the connection onto UNIX sockets.
func fig3Bertha(ctx context.Context, cfg Fig3Config) (func(ctx context.Context) (core.Conn, error), func(), error) {
	regS, regC := bertha.NewRegistry(), bertha.NewRegistry()
	localfast.Register(regS)
	localfast.Register(regC)

	ipcPath := filepath.Join(cfg.Dir, fmt.Sprintf("bertha-fig3-ipc-%d.sock", os.Getpid()))
	ipcL, err := transport.ListenUnix("host0", ipcPath)
	if err != nil {
		return nil, nil, err
	}
	envS := bertha.NewEnv("host0")
	envS.Provide(localfast.EnvListener, ipcL)
	envS.SetDialer(&transport.MultiDialer{HostID: "host0"})
	envC := bertha.NewEnv("host0")
	envC.SetDialer(&transport.MultiDialer{HostID: "host0"})

	srv, err := bertha.New("container-app", bertha.Wrap(bertha.LocalOrRemote()),
		bertha.WithRegistry(regS), bertha.WithEnv(envS))
	if err != nil {
		ipcL.Close()
		return nil, nil, err
	}
	baseL, err := transport.ListenUDP("host0", "127.0.0.1:0")
	if err != nil {
		ipcL.Close()
		return nil, nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	nl, err := srv.Listen(sctx, baseL)
	if err != nil {
		cancel()
		ipcL.Close()
		baseL.Close()
		return nil, nil, err
	}
	echoListener(sctx, nl)

	cli, err := bertha.New("client", bertha.Wrap(),
		bertha.WithRegistry(regC), bertha.WithEnv(envC))
	if err != nil {
		cancel()
		ipcL.Close()
		baseL.Close()
		return nil, nil, err
	}
	addr := baseL.Addr().Addr
	connect := func(ctx context.Context) (core.Conn, error) {
		raw, err := transport.DialUDP("host0", addr)
		if err != nil {
			return nil, err
		}
		return cli.Connect(ctx, raw)
	}
	cleanup := func() {
		cancel()
		nl.Close()
		ipcL.Close()
	}
	return connect, cleanup, nil
}
