package bench

import (
	"context"
	"fmt"
	"io"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// Fig2 prints the §3.1 example DAG — wrap!(A(arg) |> B(B::args([C(),
// D()]))) — in the library's notation, demonstrating the Chunnel DAG
// constructors (the paper's Figure 2).
func Fig2(w io.Writer) {
	stack := spec.Seq(
		spec.New("A", wire.Int(7)),
		spec.Select("B", nil,
			spec.Seq(spec.New("C")),
			spec.Seq(spec.New("D")),
		),
	)
	fmt.Fprintln(w, "## fig2: §3.1 Chunnel DAG")
	fmt.Fprintf(w, "source: bertha::new(\"foo\", wrap!(A(arg) |> B(B::args([C(),D()]))))\n")
	fmt.Fprintf(w, "built:  %s\n", stack)
	fmt.Fprintf(w, "hash:   %s (canonical encoding, used for §4.3 compatibility)\n", stack.Hash())
	fmt.Fprintf(w, "types:  %v (implementations required: %v)\n", stack.Types(), stack.ConcreteTypes())
}

// Opt runs the §6 optimizer experiment on the pipeline
//
//	encrypt |> http2 |> tcp(reliable)
//
// deployed on a host whose (simulated) SmartNIC offloads encryption and
// TCP. It reports, for each optimizer setting, the negotiated stack
// order and the number of host↔NIC (PCIe) boundary crossings a sent
// message incurs — the paper's 3× data-movement argument — plus the TLS
// fusion case where the NIC offers only a fused TLS offload.
func Opt(w io.Writer) error {
	table := stats.NewTable("opt-reorder: §6 pipeline optimization",
		"configuration", "negotiated stack", "PCIe crossings", "notes")

	// Candidate sets: encrypt and tcp offloadable on the SmartNIC,
	// http2 software-only.
	mkCands := func(withTLS bool) map[string][]core.Candidate {
		cands := map[string][]core.Candidate{
			"encrypt": {{Offer: core.ImplOffer{Name: "encrypt/nic", Type: "encrypt", Location: core.LocSmartNIC}}},
			"http2":   {{Offer: core.ImplOffer{Name: "http2/sw", Type: "http2", Location: core.LocUserspace}}},
			"reliable": {
				{Offer: core.ImplOffer{Name: "reliable/nic", Type: "reliable", Location: core.LocSmartNIC}},
			},
		}
		if withTLS {
			cands["tls"] = []core.Candidate{
				{Offer: core.ImplOffer{Name: "tls/nic", Type: "tls", Location: core.LocSmartNIC}},
			}
		}
		return cands
	}
	pipeline := []spec.Node{
		spec.New("encrypt", wire.BytesVal([]byte("key"))),
		spec.New("http2", wire.Int(16384)),
		spec.New("reliable"),
	}

	reg := core.NewRegistry()
	reg.SetTypeMeta("encrypt", core.TypeMeta{Commutes: []string{"http2"}})
	reg.AddFusion("encrypt", "reliable", "tls")

	cost := func(nodes []spec.Node, cands map[string][]core.Candidate) int {
		locs := make([]core.Location, len(nodes))
		for i, n := range nodes {
			// Each stage runs at its best candidate's location.
			best := core.LocUserspace
			for _, c := range cands[n.Type] {
				if c.Offer.Location > best {
					best = c.Offer.Location
				}
			}
			locs[i] = best
		}
		return core.DataPathCost(locs)
	}

	// Baseline: no optimizer.
	noopt := &core.Optimizer{}
	nodes, _ := noopt.Apply(pipeline, mkCands(false))
	table.AddRow("as-written", core.Describe(nodes), cost(nodes, mkCands(false)),
		"encrypt on NIC, framing on CPU: NIC->CPU->NIC bounce")

	// Reorder only.
	reorder := core.NewOptimizer(reg)
	reorder.Merge = false
	reorder.Eliminate = false
	nodes, err := reorder.Apply(pipeline, mkCands(false))
	if err != nil {
		return err
	}
	table.AddRow("reordered", core.Describe(nodes), cost(nodes, mkCands(false)),
		"encrypt moved below framing: one crossing")

	// Reorder + merge with a fused TLS offload.
	full := core.NewOptimizer(reg)
	nodes, err = full.Apply(pipeline, mkCands(true))
	if err != nil {
		return err
	}
	table.AddRow("reorder+tls-fusion", core.Describe(nodes), cost(nodes, mkCands(true)),
		"encrypt+reliable fused into the NIC's TLS offload")

	table.Render(w)
	fmt.Fprintln(w)
	return optEndToEnd(w)
}

// optEndToEnd verifies the optimizer inside a real negotiation: a
// connection declaring compress |> compress |> encrypt |> http2 resolves
// — with the optimizer enabled — to a deduplicated, reordered stack, and
// traffic still round-trips.
func optEndToEnd(w io.Writer) error {
	ctx := context.Background()
	regS, regC := bertha.NewRegistry(), bertha.NewRegistry()
	bertha.RegisterStandard(regS)
	bertha.RegisterStandard(regC)

	stack := bertha.Wrap(
		bertha.Compress(6),
		bertha.Compress(6), // redundant: eliminated
		bertha.Encrypt([]byte("k")),
		bertha.HTTP2(4096),
	)
	srv, err := bertha.New("opt-server", stack,
		bertha.WithRegistry(regS),
		bertha.WithOptimizer(bertha.NewOptimizer(regS)))
	if err != nil {
		return err
	}
	pn := transport.NewPipeNetwork()
	base, err := pn.Listen("h1", "opt")
	if err != nil {
		return err
	}
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		return err
	}
	echoListener(ctx, nl)

	cli, err := bertha.New("opt-client", bertha.Wrap(), bertha.WithRegistry(regC))
	if err != nil {
		return err
	}
	raw, err := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "opt"})
	if err != nil {
		return err
	}
	conn, err := cli.Connect(ctx, raw)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(ctx, []byte("through the optimized stack")); err != nil {
		return err
	}
	m, err := conn.Recv(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "opt-e2e: declared %s; optimizer deduplicated and negotiated a live connection (echo %d bytes ok)\n",
		stack, len(m))
	return nil
}
