package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/wire"
)

// BatchConfig parameterizes the batched-datapath experiment.
type BatchConfig struct {
	// Messages is the number of messages moved per scenario (rounded
	// down to a multiple of each burst size).
	Messages int
	// Size is the payload size in bytes.
	Size int
	// Bursts is the burst-size sweep.
	Bursts []int
	// JSON selects machine-readable output.
	JSON bool
}

func (c *BatchConfig) fill() {
	if c.Messages <= 0 {
		c.Messages = 8192
	}
	if c.Size <= 0 {
		c.Size = 64
	}
	if len(c.Bursts) == 0 {
		c.Bursts = []int{1, 8, 32, 128}
	}
}

// BatchResult is one burst size's measurement: the vectored path
// (SendBufs/RecvBufs end to end) against the per-message loop moving
// the same messages with the same number in flight.
type BatchResult struct {
	Burst           int     `json:"burst"`
	Messages        int     `json:"messages"`
	PayloadBytes    int     `json:"payload_bytes"`
	BatchMsgsPerSec float64 `json:"msgs_per_sec_batch"`
	LoopMsgsPerSec  float64 `json:"msgs_per_sec_loop"`
	Speedup         float64 `json:"speedup"`
}

// Batch measures the first-class batch path over the same
// serialize→http2→udp stack the stack experiment uses: for each burst
// size, a client pushes bursts through core.SendBufs and receives the
// echoes through core.RecvBufs, against a baseline that moves the same
// burst one SendBuf/RecvBuf at a time. Both modes keep exactly one
// burst in flight, so the delta isolates vectorization — header
// stamping in one pass, one lock acquisition and one
// sendmmsg/recvmmsg syscall per burst — rather than pipelining depth.
func Batch(w io.Writer, cfg BatchConfig) error {
	cfg.fill()
	results := make([]BatchResult, 0, len(cfg.Bursts))
	for _, burst := range cfg.Bursts {
		if burst <= 0 {
			return fmt.Errorf("batch: invalid burst %d", burst)
		}
		msgs := cfg.Messages / burst * burst
		if msgs == 0 {
			msgs = burst
		}
		batchRate, loopRate, err := runBatch(cfg, burst, msgs)
		if err != nil {
			return fmt.Errorf("batch burst=%d: %w", burst, err)
		}
		speedup := 0.0
		if loopRate > 0 {
			speedup = batchRate / loopRate
		}
		results = append(results, BatchResult{
			Burst:           burst,
			Messages:        msgs,
			PayloadBytes:    cfg.Size,
			BatchMsgsPerSec: batchRate,
			LoopMsgsPerSec:  loopRate,
			Speedup:         speedup,
		})
	}

	if cfg.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiment": "batch", "results": results})
	}
	table := stats.NewTable(
		fmt.Sprintf("batch: burst echo over serialize→http2→udp, %d-byte messages", cfg.Size),
		"burst", "msgs", "batch msg/s", "loop msg/s", "speedup")
	for _, r := range results {
		table.AddRow(r.Burst, r.Messages,
			fmt.Sprintf("%.0f", r.BatchMsgsPerSec),
			fmt.Sprintf("%.0f", r.LoopMsgsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	table.Render(w)
	return nil
}

// runBatch moves msgs messages in bursts of burst through two live
// stack pairs — one driven end to end by the vectored path, one by the
// per-message loop — and returns both sustained rates. The rounds
// interleave (vectored, loop, vectored, loop, …) with per-round timing
// recorded separately, so scheduler drift and allocator phase hit both
// modes equally and the reported speedup stays a same-conditions ratio;
// back-to-back contiguous runs were noisy enough to swamp the
// few-percent deltas the burst-1 floor gates on. The rates come from
// the median round rather than the total, which keeps asymmetric
// outliers (a GC pause or preemption landing inside one mode's rounds)
// from skewing the ratio.
func runBatch(cfg BatchConfig, burst, msgs int) (batchRate, loopRate float64, err error) {
	vRound, vClose, err := batchRounder(cfg, burst, true)
	if err != nil {
		return 0, 0, err
	}
	defer vClose()
	lRound, lClose, err := batchRounder(cfg, burst, false)
	if err != nil {
		return 0, 0, err
	}
	defer lClose()

	rounds := msgs / burst
	warm := rounds / 10
	if warm < 4 {
		warm = 4
	}
	for i := 0; i < warm; i++ {
		if err := vRound(); err != nil {
			return 0, 0, err
		}
		if err := lRound(); err != nil {
			return 0, 0, err
		}
	}
	vRec := stats.NewRecorder(rounds)
	lRec := stats.NewRecorder(rounds)
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err := vRound(); err != nil {
			return 0, 0, err
		}
		vRec.Record(time.Since(t0))
		t0 = time.Now()
		if err := lRound(); err != nil {
			return 0, 0, err
		}
		lRec.Record(time.Since(t0))
	}
	perBurst := float64(burst) * 1e6 // Percentile reports µs
	return perBurst / vRec.Percentile(50), perBurst / lRec.Percentile(50), nil
}

// batchRounder builds one scenario: a fresh stack pair with an echo
// server matching the mode, and a round func that sends a full burst
// then collects the echoed burst. Rounds run under a deadline so a
// dropped datagram (possible on a loaded machine, UDP being UDP) fails
// the round rather than hanging.
func batchRounder(cfg BatchConfig, burst int, vectored bool) (round func() error, closeFn func(), err error) {
	cli, srv, err := stackPair()
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	go batchEcho(ctx, srv, burst, vectored)

	payload := make([]byte, cfg.Size)
	headroom := core.HeadroomOf(cli)
	out := make([]*wire.Buf, burst)
	in := make([]*wire.Buf, burst)

	closeFn = func() {
		cli.Close()
		srv.Close()
	}
	round = func() error {
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if vectored {
			for i := range out {
				out[i] = wire.NewBufFrom(headroom, payload)
			}
			if err := core.SendBufs(rctx, cli, out); err != nil {
				return err
			}
			got := 0
			for got < burst {
				n, err := core.RecvBufs(rctx, cli, in[:burst-got])
				if err != nil {
					return err
				}
				core.ReleaseAll(in[:n])
				got += n
			}
			return nil
		}
		for i := 0; i < burst; i++ {
			if err := core.SendBuf(rctx, cli, wire.NewBufFrom(headroom, payload)); err != nil {
				return err
			}
		}
		for i := 0; i < burst; i++ {
			b, err := core.RecvBuf(rctx, cli)
			if err != nil {
				return err
			}
			b.Release()
		}
		return nil
	}
	return round, closeFn, nil
}

// batchEcho bounces everything it receives back to the sender, using
// the vectored path (drain a burst, return a burst) or the per-message
// path to match the scenario under test.
func batchEcho(ctx context.Context, conn core.Conn, burst int, vectored bool) {
	if !vectored {
		for {
			b, err := core.RecvBuf(ctx, conn)
			if err != nil {
				return
			}
			if core.SendBuf(ctx, conn, b) != nil {
				return
			}
		}
	}
	scratch := make([]*wire.Buf, burst)
	for {
		n, err := core.RecvBufs(ctx, conn, scratch)
		if err != nil {
			return
		}
		if core.SendBufs(ctx, conn, scratch[:n]) != nil {
			return
		}
	}
}
