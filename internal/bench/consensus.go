package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/rsm"
	"github.com/bertha-net/bertha/internal/simnet"
	"github.com/bertha-net/bertha/internal/stats"
)

// ConsensusConfig parameterizes the ordered-multicast ablation.
type ConsensusConfig struct {
	// Ops is the number of operations invoked per variant.
	Ops int
	// LinkLatency is the one-way host↔switch delay on the simulated
	// fabric.
	LinkLatency time.Duration
	// Replicas is the group size.
	Replicas int
}

func (c *ConsensusConfig) fill() {
	if c.Ops <= 0 {
		c.Ops = 500
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 200 * time.Microsecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
}

// Consensus runs the §3.2 / Listing 2 network-assisted consensus
// ablation on the simulated fabric: replicated-state-machine invocation
// latency with the ordered-multicast sequencer placed (a) in the
// programmable switch (the NOPaxos-style offload — the multicast is
// stamped in flight, one fabric pass) versus (b) on the lead replica
// (the host fallback — every operation detours through the leader).
// The switch variant should win by roughly the two extra link
// traversals the leader detour costs.
func Consensus(w io.Writer, cfg ConsensusConfig) error {
	cfg.fill()
	table := stats.NewTable(
		fmt.Sprintf("consensus: RSM invocation latency, %d replicas, %v links (µs)",
			cfg.Replicas, cfg.LinkLatency),
		"sequencer", "n", "p5", "p25", "p50", "p75", "p95")

	for _, variant := range []struct {
		name       string
		withSwitch bool
	}{
		{"switch (in-network)", true},
		{"host (leader fallback)", false},
	} {
		rec, err := consensusRun(cfg, variant.withSwitch)
		if err != nil {
			return fmt.Errorf("consensus %s: %w", variant.name, err)
		}
		table.AddRow(stats.BoxplotRow(variant.name, rec.Summarize())...)
	}
	table.Render(w)
	return nil
}

func consensusRun(cfg ConsensusConfig, withSwitch bool) (*stats.Recorder, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	net := simnet.New()
	defer net.Close()
	sw, err := net.AddSwitch("tor", 16)
	if err != nil {
		return nil, err
	}
	var hosts []string
	for i := 0; i < cfg.Replicas; i++ {
		hosts = append(hosts, fmt.Sprintf("r%d", i))
	}
	hostObjs := map[string]*simnet.Host{}
	for _, h := range append(append([]string{}, hosts...), "cli") {
		host, err := net.AddHost(h, sw, simnet.LinkConfig{Latency: cfg.LinkLatency})
		if err != nil {
			return nil, err
		}
		hostObjs[h] = host
	}

	const gid = "bench"
	for _, h := range hosts {
		reg := bertha.NewRegistry()
		swImpl, hostImpl := mcast.Register(reg)
		impl := hostImpl
		if withSwitch {
			impl = swImpl
		}
		env := bertha.NewEnv(h)
		env.Provide(mcast.EnvHost, hostObjs[h])
		if withSwitch {
			env.Provide(mcast.EnvSwitch, sw)
		}
		env.SetDialer(hostObjs[h].Dialer())
		if err := impl.EnsureReplica(env, gid, hosts); err != nil {
			return nil, err
		}
		deliveries, _ := impl.Deliveries(gid)
		rep := rsm.NewReplica(rsm.Func(func(op []byte) []byte { return op }))
		go rep.Run(ctx, deliveries)

		ep, err := bertha.New("rsm-"+h, bertha.Wrap(bertha.OrderedMcast(gid, hosts)),
			bertha.WithRegistry(reg), bertha.WithEnv(env))
		if err != nil {
			return nil, err
		}
		base, err := hostObjs[h].Listen("rsm")
		if err != nil {
			return nil, err
		}
		nl, err := ep.Listen(ctx, base)
		if err != nil {
			return nil, err
		}
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}

	reg := bertha.NewRegistry()
	mcast.Register(reg)
	env := bertha.NewEnv("cli")
	env.SetDialer(hostObjs["cli"].Dialer())
	ep, err := bertha.New("ordered-multicast-client", bertha.Wrap(),
		bertha.WithRegistry(reg), bertha.WithEnv(env))
	if err != nil {
		return nil, err
	}
	var raws []core.Conn
	for _, h := range hosts {
		raw, err := hostObjs["cli"].Dial(ctx, hostObjs[h].Addr("rsm"))
		if err != nil {
			return nil, err
		}
		raws = append(raws, raw)
	}
	conn, err := ep.ConnectMulti(ctx, raws)
	if err != nil {
		return nil, err
	}
	cli := rsm.NewClient(conn, cfg.Replicas/2+1)
	defer cli.Close()

	rec := stats.NewRecorder(cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		t0 := time.Now()
		if _, err := cli.Invoke(ctx, []byte(strconv.Itoa(i))); err != nil {
			return nil, err
		}
		rec.Record(time.Since(t0))
	}
	return rec, nil
}
