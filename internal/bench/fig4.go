package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/anycast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/discovery"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/transport"
)

// Fig4Config parameterizes the dynamic-name-resolution experiment.
type Fig4Config struct {
	// Duration is the total timeline (the paper's plot spans ~8 s).
	Duration time.Duration
	// LocalStartAt is when the local server instance starts (paper: 4 s).
	LocalStartAt time.Duration
	// Interval is the gap between client connections/requests.
	Interval time.Duration
	// RemoteExtraLatency models the network distance to the remote
	// instance (applied per message on top of real loopback UDP).
	RemoteExtraLatency time.Duration
	// Dir is where UNIX sockets are created.
	Dir string
}

func (c *Fig4Config) fill() {
	if c.Duration <= 0 {
		c.Duration = 8 * time.Second
	}
	if c.LocalStartAt <= 0 {
		c.LocalStartAt = c.Duration / 2
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.RemoteExtraLatency <= 0 {
		c.RemoteExtraLatency = 500 * time.Microsecond
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
}

// Fig4 runs the Figure 4 experiment: a client issues one RPC per fresh
// connection on a fixed interval, resolving the service name through
// the discovery-backed anycast directory on every connection. Until
// LocalStartAt, only a remote instance exists (loopback UDP plus a
// simulated distance); then a local instance starts and registers, and
// subsequent connections resolve to it over UNIX sockets. The output is
// the per-second median latency series — the paper's step down at t≈4 s.
func Fig4(w io.Writer, cfg Fig4Config) error {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	svc := discovery.NewService()
	dir := anycast.NewLocalDirectory(svc)

	// Remote instance: UDP with simulated distance, up from the start.
	remoteL, err := transport.ListenUDP("remotehost", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer remoteL.Close()
	echoListener(ctx, remoteL)
	if err := dir.Advertise(ctx, "svc", anycast.Instance{
		Name: "remote", Addr: remoteL.Addr(), Cost: 10,
	}, time.Hour); err != nil {
		return err
	}

	// The resolver dials remote over UDP (with extra latency) and local
	// over UNIX sockets.
	extra := cfg.RemoteExtraLatency
	dialer := core.DialerFunc(func(ctx context.Context, addr core.Addr) (core.Conn, error) {
		switch addr.Net {
		case "udp":
			c, err := transport.DialUDP("clienthost", addr.Addr)
			if err != nil {
				return nil, err
			}
			return delayConn{Conn: c, delay: extra}, nil
		case "unix":
			return transport.DialUnix("clienthost", addr.Addr)
		default:
			return nil, fmt.Errorf("fig4: unexpected network %q", addr.Net)
		}
	})
	resolver := &anycast.Resolver{
		Directory: dir,
		Strategy:  anycast.Nearest{},
		Dialer:    dialer,
		FromHost:  "clienthost",
	}

	start := time.Now()
	series := stats.NewTimeSeries(start)

	// At LocalStartAt, the local instance starts and registers.
	localPath := filepath.Join(cfg.Dir, fmt.Sprintf("bertha-fig4-%d.sock", os.Getpid()))
	localReady := time.AfterFunc(cfg.LocalStartAt, func() {
		localL, err := transport.ListenUnix("clienthost", localPath)
		if err != nil {
			return
		}
		echoListener(ctx, localL)
		dir.Advertise(ctx, "svc", anycast.Instance{
			Name: "local", Addr: localL.Addr(), Cost: 1,
		}, time.Hour)
		go func() {
			<-ctx.Done()
			localL.Close()
		}()
	})
	defer localReady.Stop()

	payload := make([]byte, 128)
	for time.Since(start) < cfg.Duration {
		at := time.Now()
		conn, _, err := resolver.Dial(ctx, "svc")
		if err != nil {
			return fmt.Errorf("fig4 dial: %w", err)
		}
		if err := conn.Send(ctx, payload); err != nil {
			conn.Close()
			return err
		}
		if _, err := conn.Recv(ctx); err != nil {
			conn.Close()
			return err
		}
		series.RecordAt(at, time.Since(at))
		conn.Close()
		time.Sleep(cfg.Interval)
	}

	bins := series.Bin(cfg.Duration, time.Second)
	table := stats.NewTable("fig4: per-request latency over time (median per 1 s bin, µs)",
		"t (s)", "median latency", "instance")
	for i, v := range bins {
		instance := "remote"
		if time.Duration(i)*time.Second >= cfg.LocalStartAt {
			instance = "local"
		}
		if math.IsNaN(v) {
			table.AddRow(i, "-", instance)
			continue
		}
		table.AddRow(i, v, instance)
	}
	table.Render(w)
	return nil
}

// delayConn adds a fixed delay to each message in both directions,
// modeling network distance on top of a real socket.
type delayConn struct {
	core.Conn
	delay time.Duration
}

func (d delayConn) Send(ctx context.Context, p []byte) error {
	time.Sleep(d.delay)
	return d.Conn.Send(ctx, p)
}

func (d delayConn) Recv(ctx context.Context) ([]byte, error) {
	m, err := d.Conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	time.Sleep(d.delay)
	return m, nil
}
