// Sharded key-value store: Listings 4 and 5 end to end. The server
// exposes one canonical address with a sharding chunnel whose shard
// function is declarative (hash of the key field), so it can be
// negotiated to clients and offloads. Two clients connect: one links
// the client-push implementation (requests go straight to the right
// shard), the other relies on the server's XDP-style steering — the
// paper's "Mixed" deployment, in one process.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/kv"
)

func main() {
	ctx := context.Background()
	net := transport.NewPipeNetwork()
	const nshards = 3

	// --- Listing 4: the server ---
	server, err := kv.NewServer(nshards)
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	var shardAddrs []bertha.Addr
	for i := 0; i < nshards; i++ {
		l, err := net.Listen("server-host", fmt.Sprintf("shard%d", i))
		if err != nil {
			log.Fatal(err)
		}
		shardAddrs = append(shardAddrs, l.Addr())
		server.ServeShard(i, l)
	}

	regS := bertha.NewRegistry()
	shard.RegisterServer(regS) // userspace fallback
	x := shard.RegisterXDP(regS)
	envS := bertha.NewEnv("server-host")
	envS.SetDialer(&transport.MultiDialer{HostID: "server-host", Pipe: net})
	envS.Provide(shard.EnvQueues, server.Queues())

	// let srv = bertha::new("my-kv-srv",
	//     wrap!(shard(shard::args(choices: shards), fn: shard_fn)))
	//     .listen(addr, port);
	srv, err := bertha.New("my-kv-srv",
		bertha.Wrap(bertha.Shard(shardAddrs, kv.ShardFunc(nshards))),
		bertha.WithRegistry(regS), bertha.WithEnv(envS))
	if err != nil {
		log.Fatal(err)
	}
	base, err := net.Listen("server-host", "kv")
	if err != nil {
		log.Fatal(err)
	}
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()

	// --- Listing 5: clients ---
	dial := func(name, host string, push bool) *kv.Client {
		reg := bertha.NewRegistry()
		if push {
			shard.RegisterClient(reg) // bertha::register_chunnel(...)
		}
		env := bertha.NewEnv(host)
		env.SetDialer(&transport.MultiDialer{HostID: host, Pipe: net})
		ep, err := bertha.New(name, bertha.Wrap(), // no chunnels: server dictates
			bertha.WithRegistry(reg), bertha.WithEnv(env))
		if err != nil {
			log.Fatal(err)
		}
		raw, err := net.DialFrom(ctx, host, bertha.Addr{Net: "pipe", Addr: "kv"})
		if err != nil {
			log.Fatal(err)
		}
		conn, err := ep.Connect(ctx, raw)
		if err != nil {
			log.Fatal(err)
		}
		return kv.NewClient(conn)
	}

	pushClient := dial("client-push", "host-a", true)
	defer pushClient.Close()
	plainClient := dial("client-plain", "host-b", false)
	defer plainClient.Close()

	// Both clients operate on the same keyspace through their different
	// negotiated paths.
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("%012d", i)
		if err := pushClient.Put(ctx, key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("%012d", i)
		v, err := plainClient.Get(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			log.Fatalf("key %s: got %q", key, v)
		}
	}

	for i := 0; i < nshards; i++ {
		fmt.Printf("shard %d holds %d keys\n", i, server.Shard(i).Len())
	}
	fmt.Printf("xdp steering: %d packets redirected (plain client's traffic)\n",
		x.Hook().Stats().Redirected)
	fmt.Println("kvstore: push and steered clients agree on all 30 keys")
}
