// DAG optimization: the §6 example. An application declares
// encrypt |> http2 |> reliable; the host's (simulated) SmartNIC offloads
// encryption and reliability. The optimizer reorders the pipeline so the
// offloaded stages are contiguous at the bottom — cutting host↔NIC data
// movement from 3 crossings to 1 — and, when the NIC instead offers a
// fused TLS engine, merges encrypt+reliable into it.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/bertha-net/bertha/internal/bench"
)

func main() {
	bench.Fig2(os.Stdout)
	fmt.Println()
	if err := bench.Opt(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
