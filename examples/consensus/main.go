// Network-assisted consensus: Listing 2. A replicated counter runs on
// three replicas; clients multicast operations through the ordered
// multicast chunnel. On a fabric with a programmable switch the
// sequencer runs in the switch (NOPaxos-style); without one, a software
// sequencer on the lead replica is used — the application code does not
// change.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/rsm"
	"github.com/bertha-net/bertha/internal/simnet"
)

const gid = "counter"

var replicaHosts = []string{"r1", "r2", "r3"}

func main() {
	for _, withSwitch := range []bool{true, false} {
		run(withSwitch)
	}
}

func run(withSwitch bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A rack: three replicas and a client behind one switch.
	net := simnet.New()
	defer net.Close()
	sw, err := net.AddSwitch("tor", 16)
	if err != nil {
		log.Fatal(err)
	}
	hosts := map[string]*simnet.Host{}
	for _, h := range append(append([]string{}, replicaHosts...), "client") {
		host, err := net.AddHost(h, sw, simnet.LinkConfig{Latency: 100 * time.Microsecond})
		if err != nil {
			log.Fatal(err)
		}
		hosts[h] = host
	}

	// Replicas: a counter state machine over ordered deliveries.
	for _, h := range replicaHosts {
		reg := bertha.NewRegistry()
		swImpl, hostImpl := mcast.Register(reg)
		impl := hostImpl
		if withSwitch {
			impl = swImpl
		}
		env := bertha.NewEnv(h)
		env.Provide(mcast.EnvHost, hosts[h])
		if withSwitch {
			env.Provide(mcast.EnvSwitch, sw)
		}
		env.SetDialer(hosts[h].Dialer())
		if err := impl.EnsureReplica(env, gid, replicaHosts); err != nil {
			log.Fatal(err)
		}

		var total int64
		replica := rsm.NewReplica(rsm.Func(func(op []byte) []byte {
			n, _ := strconv.ParseInt(string(op), 10, 64)
			total += n
			return []byte(strconv.FormatInt(total, 10))
		}))
		deliveries, _ := impl.Deliveries(gid)
		go replica.Run(ctx, deliveries)

		// let conn = bertha::new("ordered-multicast-client",
		//     wrap!(serialize() |> ordered_mcast())).connect(endpts);
		ep, err := bertha.New("replica-"+h,
			bertha.Wrap(bertha.OrderedMcast(gid, replicaHosts)),
			bertha.WithRegistry(reg), bertha.WithEnv(env))
		if err != nil {
			log.Fatal(err)
		}
		base, err := hosts[h].Listen("rsm")
		if err != nil {
			log.Fatal(err)
		}
		nl, err := ep.Listen(ctx, base)
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}

	// Client: connect(endpts) — a vector of endpoint addresses.
	reg := bertha.NewRegistry()
	mcast.Register(reg)
	env := bertha.NewEnv("client")
	env.SetDialer(hosts["client"].Dialer())
	ep, err := bertha.New("ordered-multicast-client", bertha.Wrap(),
		bertha.WithRegistry(reg), bertha.WithEnv(env))
	if err != nil {
		log.Fatal(err)
	}
	var raws []bertha.Conn
	for _, h := range replicaHosts {
		raw, err := hosts["client"].Dial(ctx, hosts[h].Addr("rsm"))
		if err != nil {
			log.Fatal(err)
		}
		raws = append(raws, raw)
	}
	conn, err := ep.ConnectMulti(ctx, raws)
	if err != nil {
		log.Fatal(err)
	}
	client := rsm.NewClient(conn, 2) // majority of 3
	defer client.Close()

	sum := int64(0)
	start := time.Now()
	for i := 1; i <= 10; i++ {
		sum += int64(i)
		result, err := client.Invoke(ctx, []byte(strconv.Itoa(i)))
		if err != nil {
			log.Fatal(err)
		}
		if string(result) != strconv.FormatInt(sum, 10) {
			log.Fatalf("op %d: result %s, want %d", i, result, sum)
		}
	}
	mode := "switch sequencer (in-network)"
	if !withSwitch {
		mode = "host sequencer (leader fallback)"
	}
	fmt.Printf("consensus [%s]: 10 ops agreed, final total %d, avg %v/op\n",
		mode, sum, (time.Since(start) / 10).Round(time.Microsecond))
}
