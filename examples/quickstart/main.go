// Quickstart: the smallest complete Bertha program. A server declares a
// two-chunnel DAG (serialization over reliability, §3.1); a client
// declares none and inherits the server's chunnels during negotiation
// (Listing 5). Runs entirely in-process.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/bertha/transport"
)

func main() {
	ctx := context.Background()

	// Applications register fallback implementations at launch
	// (Listing 5 line 2). RegisterStandard installs the fallbacks for
	// every shipped chunnel.
	regServer, regClient := bertha.NewRegistry(), bertha.NewRegistry()
	bertha.RegisterStandard(regServer)
	bertha.RegisterStandard(regClient)

	// An in-process datagram network stands in for UDP.
	net := transport.NewPipeNetwork()

	// Server: bertha::new("echo-server", wrap!(serialize() |> reliable())).
	srv, err := bertha.New("echo-server",
		bertha.Wrap(bertha.Serialize(), bertha.Reliable()),
		bertha.WithRegistry(regServer))
	if err != nil {
		log.Fatal(err)
	}
	base, err := net.Listen("server-host", "echo")
	if err != nil {
		log.Fatal(err)
	}
	listener, err := srv.Listen(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := listener.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn bertha.Conn) {
				defer conn.Close()
				for {
					msg, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					if err := conn.Send(ctx, append([]byte("echo: "), msg...)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	// Client: wrap!() — the chunnels used are dictated by the server.
	cli, err := bertha.New("echo-client", bertha.Wrap(), bertha.WithRegistry(regClient))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := net.DialFrom(ctx, "client-host", bertha.Addr{Net: "pipe", Addr: "echo"})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := cli.Connect(ctx, raw) // negotiation happens here (§4.3)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	for _, msg := range []string{"hello", "chunnels", "compose"} {
		if err := conn.Send(ctx, []byte(msg)); err != nil {
			log.Fatal(err)
		}
		reply, err := conn.Recv(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s\n", msg, reply)
	}
	fmt.Println("quickstart: negotiated stack carried serialized, reliable traffic")
}
