// Container fast-path: Listing 1. A server wraps its connection in
// local_or_remote(); clients on the same host are spliced onto UNIX
// sockets during negotiation, clients on other hosts stay on the
// network path — with identical application code on both sides.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/chunnels/localfast"
)

func main() {
	ctx := context.Background()

	regS := bertha.NewRegistry()
	bertha.RegisterStandard(regS)

	// The server's IPC attachment point: a real UNIX datagram socket.
	sockPath := filepath.Join(os.TempDir(), fmt.Sprintf("bertha-lfp-%d.sock", os.Getpid()))
	ipcL, err := transport.ListenUnix("this-host", sockPath)
	if err != nil {
		log.Fatal(err)
	}
	defer ipcL.Close()

	envS := bertha.NewEnv("this-host")
	envS.Provide(localfast.EnvListener, ipcL)
	envS.SetDialer(&transport.MultiDialer{HostID: "this-host"})

	// let srv = bertha::new("container-app", wrap!(local_or_remote()))
	//     .listen(SocketAddr(addr, port));
	srv, err := bertha.New("container-app",
		bertha.Wrap(bertha.LocalOrRemote()),
		bertha.WithRegistry(regS), bertha.WithEnv(envS))
	if err != nil {
		log.Fatal(err)
	}
	base, err := transport.ListenUDP("this-host", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := nl.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn bertha.Conn) {
				defer conn.Close()
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					conn.Send(ctx, m)
				}
			}(conn)
		}
	}()
	addr := base.Addr().Addr

	// measure runs 3 RPCs on a fresh connection from the given host
	// identity and reports the data path taken.
	measure := func(fromHost string) (time.Duration, string) {
		regC := bertha.NewRegistry()
		bertha.RegisterStandard(regC)
		envC := bertha.NewEnv(fromHost)
		envC.SetDialer(&transport.MultiDialer{HostID: fromHost})
		cli, err := bertha.New("client", bertha.Wrap(),
			bertha.WithRegistry(regC), bertha.WithEnv(envC))
		if err != nil {
			log.Fatal(err)
		}
		raw, err := transport.DialUDP(fromHost, addr)
		if err != nil {
			log.Fatal(err)
		}
		conn, err := cli.Connect(ctx, raw)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		for i := 0; i < 3; i++ {
			if err := conn.Send(ctx, []byte("ping")); err != nil {
				log.Fatal(err)
			}
			if _, err := conn.Recv(ctx); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start) / 3, conn.RemoteAddr().Net
	}

	// Same host: negotiation picks the IPC branch (UNIX sockets).
	lat, path := measure("this-host")
	fmt.Printf("same host:  data path=%s, avg RPC %v\n", path, lat.Round(time.Microsecond))
	if path != "unix" {
		log.Fatalf("expected the unix fast path, got %s", path)
	}

	// Different host identity: the passthrough (network) branch.
	lat, path = measure("other-host")
	fmt.Printf("cross host: data path=%s, avg RPC %v\n", path, lat.Round(time.Microsecond))
	if path == "unix" {
		log.Fatal("cross-host connection must not use IPC")
	}
	fmt.Println("localfastpath: same application code, transparently different data paths")
}
